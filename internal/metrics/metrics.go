// Package metrics implements the LongBench evaluation metrics of the
// paper's Table I: token-level F1 (Qasper, TriviaQA), ROUGE (QMSum,
// MultiNews, SAMSum), classification score (TREC) and edit similarity
// (LCC, RepoBench-P). All metrics operate on word-token slices and return
// scores in [0, 1]; experiment drivers rescale to the paper's 0–100 style.
package metrics

// Kind identifies which metric a dataset is scored with.
type Kind int

// Metric kinds, matching Table I.
const (
	F1 Kind = iota
	Rouge
	Classification
	EditSim
)

func (k Kind) String() string {
	switch k {
	case F1:
		return "F1"
	case Rouge:
		return "ROUGE-L"
	case Classification:
		return "Classification"
	case EditSim:
		return "EditSim"
	}
	return "Unknown"
}

// Score dispatches to the metric implementation.
func Score(k Kind, pred, ref []string) float64 {
	switch k {
	case F1:
		return TokenF1(pred, ref)
	case Rouge:
		return RougeL(pred, ref)
	case Classification:
		return ClassificationScore(pred, ref)
	case EditSim:
		return EditSimilarity(pred, ref)
	default:
		return 0
	}
}

// TokenF1 is the SQuAD-style bag-of-tokens F1 between prediction and
// reference.
func TokenF1(pred, ref []string) float64 {
	if len(pred) == 0 || len(ref) == 0 {
		if len(pred) == 0 && len(ref) == 0 {
			return 1
		}
		return 0
	}
	refCount := map[string]int{}
	for _, w := range ref {
		refCount[w]++
	}
	overlap := 0
	for _, w := range pred {
		if refCount[w] > 0 {
			refCount[w]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	p := float64(overlap) / float64(len(pred))
	r := float64(overlap) / float64(len(ref))
	return 2 * p * r / (p + r)
}

// RougeN is the n-gram co-occurrence F1 (ROUGE-N).
func RougeN(n int, pred, ref []string) float64 {
	pg := ngrams(pred, n)
	rg := ngrams(ref, n)
	if len(pg) == 0 || len(rg) == 0 {
		if len(pg) == 0 && len(rg) == 0 {
			return 1
		}
		return 0
	}
	overlap := 0
	for g, c := range pg {
		if rc := rg[g]; rc > 0 {
			if c < rc {
				overlap += c
			} else {
				overlap += rc
			}
		}
	}
	if overlap == 0 {
		return 0
	}
	p := float64(overlap) / float64(count(pg))
	r := float64(overlap) / float64(count(rg))
	return 2 * p * r / (p + r)
}

func ngrams(toks []string, n int) map[string]int {
	out := map[string]int{}
	for i := 0; i+n <= len(toks); i++ {
		key := ""
		for j := 0; j < n; j++ {
			key += toks[i+j] + "\x00"
		}
		out[key]++
	}
	return out
}

func count(m map[string]int) int {
	s := 0
	for _, c := range m {
		s += c
	}
	return s
}

// RougeL is the longest-common-subsequence F1 (ROUGE-L).
func RougeL(pred, ref []string) float64 {
	if len(pred) == 0 || len(ref) == 0 {
		if len(pred) == 0 && len(ref) == 0 {
			return 1
		}
		return 0
	}
	l := lcs(pred, ref)
	if l == 0 {
		return 0
	}
	p := float64(l) / float64(len(pred))
	r := float64(l) / float64(len(ref))
	return 2 * p * r / (p + r)
}

// lcs returns the longest common subsequence length (O(len(a)) memory).
func lcs(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// ClassificationScore is exact-match on the first predicted token, the
// LongBench TREC convention (the answer is a single class label).
func ClassificationScore(pred, ref []string) float64 {
	if len(ref) == 0 {
		return 0
	}
	if len(pred) == 0 {
		return 0
	}
	if pred[0] == ref[0] {
		return 1
	}
	return 0
}

// EditSimilarity is 1 − normalized Levenshtein distance over tokens, the
// LongBench code-completion similarity score.
func EditSimilarity(pred, ref []string) float64 {
	if len(pred) == 0 && len(ref) == 0 {
		return 1
	}
	maxLen := len(pred)
	if len(ref) > maxLen {
		maxLen = len(ref)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(levenshtein(pred, ref))/float64(maxLen)
}

// levenshtein computes token-level edit distance (two-row DP).
func levenshtein(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if v := prev[j] + 1; v < m {
				m = v
			}
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
