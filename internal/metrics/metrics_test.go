package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rngx"
)

func w(s string) []string { return strings.Fields(s) }

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTokenF1(t *testing.T) {
	cases := []struct {
		pred, ref string
		want      float64
	}{
		{"a b c", "a b c", 1},
		{"a b", "c d", 0},
		{"a b c d", "a b", 2 * 0.5 * 1.0 / 1.5}, // p=0.5 r=1
		{"a a", "a", 2 * 0.5 * 1.0 / 1.5},       // multiset semantics
		{"", "", 1},
		{"", "a", 0},
		{"a", "", 0},
	}
	for _, c := range cases {
		if got := TokenF1(w(c.pred), w(c.ref)); !approx(got, c.want) {
			t.Fatalf("F1(%q,%q) = %v, want %v", c.pred, c.ref, got, c.want)
		}
	}
}

func TestRougeN(t *testing.T) {
	if got := RougeN(2, w("a b c"), w("a b c")); !approx(got, 1) {
		t.Fatalf("ROUGE-2 identical = %v", got)
	}
	if got := RougeN(2, w("a b x"), w("a b c")); got <= 0 || got >= 1 {
		t.Fatalf("ROUGE-2 partial = %v, want in (0,1)", got)
	}
	if got := RougeN(2, w("a"), w("a")); !approx(got, 1) {
		t.Fatalf("ROUGE-2 with no bigrams = %v, want 1 (both empty)", got)
	}
}

func TestRougeL(t *testing.T) {
	if got := RougeL(w("the cat sat"), w("the cat sat")); !approx(got, 1) {
		t.Fatal("identical should be 1")
	}
	// LCS("a b c d", "a x c y") = "a c" (2); p=2/4, r=2/4 -> F1=0.5.
	if got := RougeL(w("a b c d"), w("a x c y")); !approx(got, 0.5) {
		t.Fatalf("RougeL = %v, want 0.5", got)
	}
	if got := RougeL(nil, w("a")); got != 0 {
		t.Fatal("empty pred should be 0")
	}
}

func TestClassificationScore(t *testing.T) {
	if ClassificationScore(w("label3 junk"), w("label3")) != 1 {
		t.Fatal("first-token match should score 1")
	}
	if ClassificationScore(w("label2"), w("label3")) != 0 {
		t.Fatal("mismatch should score 0")
	}
	if ClassificationScore(nil, w("label3")) != 0 {
		t.Fatal("empty pred should score 0")
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity(w("a b c"), w("a b c")); !approx(got, 1) {
		t.Fatal("identical should be 1")
	}
	if got := EditSimilarity(w("a b c d"), w("a b x d")); !approx(got, 0.75) {
		t.Fatalf("one substitution in four = %v, want 0.75", got)
	}
	if got := EditSimilarity(nil, nil); got != 1 {
		t.Fatal("both empty should be 1")
	}
	if got := EditSimilarity(nil, w("a b")); got != 0 {
		t.Fatalf("empty vs 2 tokens = %v, want 0", got)
	}
}

func TestScoreDispatch(t *testing.T) {
	pred, ref := w("a b"), w("a b")
	for _, k := range []Kind{F1, Rouge, Classification, EditSim} {
		if got := Score(k, pred, ref); !approx(got, 1) {
			t.Fatalf("%v identical = %v", k, got)
		}
	}
	if Score(Kind(99), pred, ref) != 0 {
		t.Fatal("unknown kind should score 0")
	}
}

func TestKindString(t *testing.T) {
	if F1.String() != "F1" || Rouge.String() != "ROUGE-L" ||
		Classification.String() != "Classification" || EditSim.String() != "EditSim" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(99).String() != "Unknown" {
		t.Fatal("unknown kind string")
	}
}

// Properties: all metrics are in [0,1], equal 1 on identity, and symmetric
// where expected (F1, ROUGE are symmetric; edit similarity is symmetric).
func randToks(r *rngx.RNG, n int) []string {
	words := []string{"a", "b", "c", "d", "e"}
	out := make([]string, n)
	for i := range out {
		out[i] = words[r.Intn(len(words))]
	}
	return out
}

func TestMetricProperties(t *testing.T) {
	check := func(seed uint64, la, lb uint8) bool {
		r := rngx.New(seed)
		a := randToks(r, int(la)%12)
		b := randToks(r, int(lb)%12)
		for _, k := range []Kind{F1, Rouge, EditSim} {
			s := Score(k, a, b)
			if s < 0 || s > 1 {
				return false
			}
			if !approx(Score(k, a, a), 1) {
				return false
			}
			if !approx(s, Score(k, b, a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinKnown(t *testing.T) {
	if d := levenshtein(w("kitten sits here"), w("sitting sits there")); d != 2 {
		t.Fatalf("levenshtein = %d, want 2", d)
	}
	if d := levenshtein(nil, w("a b")); d != 2 {
		t.Fatalf("levenshtein from empty = %d", d)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value must start at 0")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(-500)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000-8*500 {
		t.Fatalf("Counter total = %d, want %d", got, 8*1000-8*500)
	}
}
