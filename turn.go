package cocktail

// Step-granular decoding: the decomposition of Answer that lets a serving
// scheduler interleave decode steps across concurrent requests
// (continuous batching, internal/httpapi's batcher).
//
// A Turn is one in-flight Answer call split at token granularity: all the
// stages up to and including the query feed-through happen in StartAnswer
// (prefill / plan / seal / fork — the "prefill phase" of the batching
// literature), then each Step() emits at most one output token (the
// "decode phase"). Answer itself is now literally StartAnswer + drain, so
// there is a single code path and the batched and serial servers produce
// byte-identical outputs by construction, not by parallel maintenance.

import (
	"repro/internal/core"
	"repro/internal/kvcache"
	"repro/internal/model"
)

// Turn is one Answer call decomposed into single-token decode steps. It
// owns its decoder state and its private cache fork outright — nothing
// mutable is shared with the Pipeline, the Session that started it, or
// any other Turn — so any number of Turns may be interleaved, but each
// individual Turn is single-owner: callers serialize Step/Result calls.
type Turn struct {
	p         *Pipeline
	dec       *model.Decoder
	cache     *kvcache.Cache
	plan      *kvcache.Plan
	ctxTokens int
	eos       int
	next      int
	out       []int
	emitted   int // watermark into out: tokens already returned by Emitted
	res       *Result
}

// newTurn feeds the query through a fresh decoder over cache (the
// query-feed loop of model.Generate) and leaves the turn poised before
// its first output token.
func newTurn(p *Pipeline, cache *kvcache.Cache, plan *kvcache.Plan, ctxTokens int, qIDs []int) *Turn {
	t := &Turn{
		p: p, dec: p.model.NewDecoder(cache), cache: cache, plan: plan,
		ctxTokens: ctxTokens, eos: p.lex.EOSID(), next: -1,
	}
	for _, tok := range qIDs {
		t.next = t.dec.Step(tok)
	}
	return t
}

// Step advances the turn by at most one output token and reports whether
// the turn is still running. It returns false exactly when the drain loop
// of model.Generate would have stopped: the decode budget is spent, the
// model emitted EOS, or the query was empty. Once false, Result is ready
// and further Steps are no-ops.
func (t *Turn) Step() bool {
	if t.res != nil {
		return false
	}
	if len(t.out) >= maxNewTokens || t.next == t.eos || t.next < 0 {
		t.res = t.p.buildResult(t.cache, t.plan, t.ctxTokens, t.out)
		return false
	}
	t.out = append(t.out, t.next)
	t.next = t.dec.Step(t.next)
	return true
}

// Emitted returns the surface forms of the output tokens produced since
// the previous Emitted call (or since the turn started), advancing the
// emission watermark. Streaming servers call it after each Step — the
// step boundary is the flush point — and the concatenation of every
// Emitted batch equals Result().Answer exactly, so a streamed turn and a
// buffered turn are byte-identical by construction. Returns nil when no
// new tokens have been produced. Like Step and Result, Emitted is part of
// the turn's single-owner surface: callers serialize it with Step.
func (t *Turn) Emitted() []string {
	if t.emitted == len(t.out) {
		return nil
	}
	words := t.p.lex.SurfacesOf(t.out[t.emitted:])
	t.emitted = len(t.out)
	return words
}

// Finished reports whether the turn has produced its Result.
func (t *Turn) Finished() bool { return t.res != nil }

// Result drains any remaining decode steps and returns the turn's
// outcome, byte-identical to what the corresponding Answer call returns.
func (t *Turn) Result() *Result {
	for t.Step() {
	}
	return t.res
}

// StartAnswer runs the cold pipeline on (context, query) up to the first
// decode step and returns the in-flight Turn. Answer(context, query) is
// exactly StartAnswer followed by Turn.Result.
func (p *Pipeline) StartAnswer(context, query []string) (*Turn, error) {
	ctxIDs, err := p.encode(context)
	if err != nil {
		return nil, err
	}
	qIDs, err := p.encode(query)
	if err != nil {
		return nil, err
	}
	if err := p.checkSeqBound(len(ctxIDs), len(qIDs)); err != nil {
		return nil, err
	}
	b, err := p.model.Prefill(ctxIDs)
	if err != nil {
		return nil, err
	}
	cache, plan, err := core.Prepare(p.method, b, ctxIDs, qIDs)
	if err != nil {
		return nil, err
	}
	return newTurn(p, cache, plan, len(ctxIDs), qIDs), nil
}

// StartAnswer runs the session's incremental path (plan, memoized seal,
// private fork) up to the first decode step and returns the in-flight
// Turn. Session.Answer is exactly StartAnswer followed by Turn.Result.
//
// The returned Turn is independent of the Session: it decodes on the
// private fork, so the session may start further turns (from the same
// goroutine — the Session stays single-owner) while earlier turns are
// still being stepped elsewhere in a batch.
func (s *Session) StartAnswer(query []string) (*Turn, error) {
	qIDs, err := s.p.encode(query)
	if err != nil {
		return nil, err
	}
	if err := s.p.checkSeqBound(len(s.ctxIDs), len(qIDs)); err != nil {
		return nil, err
	}
	plan, opts, err := s.p.method.Plan(s.builder, s.ctxIDs, qIDs)
	if err != nil {
		return nil, err
	}
	sealed, err := s.sealedFor(plan, opts)
	if err != nil {
		return nil, err
	}
	return newTurn(s.p, sealed.Fork(), plan, len(s.ctxIDs), qIDs), nil
}
