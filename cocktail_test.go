package cocktail

import (
	"strings"
	"sync"
	"testing"
)

func TestDefaults(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Method != "Cocktail" || cfg.Model != "Llama2-7B-sim" ||
		*cfg.Alpha != 0.6 || *cfg.Beta != 0.1 || cfg.ChunkSize != 32 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if len(p.Vocabulary()) < 1000 {
		t.Fatalf("vocabulary too small: %d", len(p.Vocabulary()))
	}
}

func TestRosterFunctions(t *testing.T) {
	if len(Models()) != 4 || len(Methods()) != 5 || len(Encoders()) != 4 || len(Datasets()) != 8 {
		t.Fatalf("rosters wrong: %d/%d/%d/%d",
			len(Models()), len(Methods()), len(Encoders()), len(Datasets()))
	}
}

func TestInvalidConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{Model: "gpt-99"},
		{Method: "nope"},
		{Encoder: "nope"},
		{Alpha: Float(2)},
		{Beta: Float(-0.5)},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v should fail", cfg)
		}
	}
}

// TestEndToEndAllMethods: every public method answers a Qasper sample; the
// Cocktail pipeline recovers the reference answer and reports a compressed
// plan.
func TestEndToEndAllMethods(t *testing.T) {
	for _, method := range Methods() {
		p, err := New(Config{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NewSample("Qasper", 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(res.Answer) == 0 {
			t.Fatalf("%s: empty answer", method)
		}
		score, err := p.Score("Qasper", res.Answer, s.Answer)
		if err != nil {
			t.Fatal(err)
		}
		if method == "FP16" && score < 0.99 {
			t.Errorf("FP16 should recover the sample, F1=%v", score)
		}
		if method == "Cocktail" {
			if score < 0.7 {
				t.Errorf("Cocktail F1 = %v on an easy sample", score)
			}
			if res.Plan.CompressionRatio() < 1.5 {
				t.Errorf("Cocktail compression ratio %v too low", res.Plan.CompressionRatio())
			}
			if res.Plan.Segments > 4 {
				t.Errorf("reordered plan has %d segments", res.Plan.Segments)
			}
		}
		if method == "FP16" && res.Plan.CompressionRatio() > 1.01 {
			t.Errorf("FP16 should not compress, ratio %v", res.Plan.CompressionRatio())
		}
	}
}

// TestExplicitZeroAlphaBeta: zero is inside search's valid [0,1] range and
// must survive defaulting instead of being silently replaced by 0.6/0.1.
func TestExplicitZeroAlphaBeta(t *testing.T) {
	p, err := New(Config{Alpha: Float(0), Beta: Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if *cfg.Alpha != 0 || *cfg.Beta != 0 {
		t.Fatalf("explicit zeros overridden: alpha=%v beta=%v", *cfg.Alpha, *cfg.Beta)
	}
	s, err := p.NewSample("Qasper", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	// α=0 puts T_low at the score minimum, so no chunk scores strictly
	// below it: nothing may be INT2.
	if n := res.Plan.TokensByPrecision["INT2"]; n != 0 {
		t.Errorf("alpha=0 still produced %d INT2 tokens: %v", n, res.Plan.TokensByPrecision)
	}
}

// TestConcurrentPipelineUse exercises the documented concurrency contract:
// many goroutines sharing one Pipeline must produce exactly the results of
// serial calls. Run with -race this guards the serving path.
func TestConcurrentPipelineUse(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	samples := make([]*Sample, n)
	want := make([]string, n)
	for i := range samples {
		s, err := p.NewSample("Qasper", uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		samples[i] = s
		want[i] = strings.Join(res.Answer, " ")
	}
	var wg sync.WaitGroup
	got := make([]string, n)
	gotSamples := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Answer(samples[i].Context, samples[i].Query)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = strings.Join(res.Answer, " ")
			// Sample generation is also part of the contract (the HTTP
			// /v1/sample endpoint runs it unpooled).
			s, err := p.NewSample("Qasper", uint64(i+1))
			if err != nil {
				errs[i] = err
				return
			}
			gotSamples[i] = strings.Join(s.Context, " ")
			_, _, _, _, errs[i] = p.SearchOnly(samples[i].Context, samples[i].Query)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("goroutine %d: concurrent answer %q != serial %q", i, got[i], want[i])
		}
		if gotSamples[i] != strings.Join(samples[i].Context, " ") {
			t.Errorf("goroutine %d: concurrent NewSample differs from serial", i)
		}
	}
}

func TestAnswerRejectsOOV(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Answer([]string{"definitely-not-a-word"}, []string{"x"}); err == nil {
		t.Fatal("expected OOV error")
	}
}

func TestAnswerRejectsTooLong(t *testing.T) {
	p, err := New(Config{MaxSeq: 256})
	if err != nil {
		t.Fatal(err)
	}
	long := make([]string, 400)
	for i := range long {
		long[i] = p.Vocabulary()[0]
	}
	if _, err := p.Answer(long, long[:2]); err == nil {
		t.Fatal("expected length error")
	}
}

func TestSearchOnly(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("QMSum", 3)
	if err != nil {
		t.Fatal(err)
	}
	scores, tlow, thigh, precs, err := p.SearchOnly(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(precs) || len(scores) == 0 {
		t.Fatalf("scores/precs length mismatch: %d vs %d", len(scores), len(precs))
	}
	if tlow > thigh {
		t.Fatalf("tlow %v > thigh %v", tlow, thigh)
	}
	seen := map[string]bool{}
	for _, pr := range precs {
		seen[pr] = true
	}
	if !seen["INT2"] {
		t.Errorf("search produced no INT2 chunks: %v", seen)
	}
	// The ground-truth needle chunk must not be INT2.
	for _, c := range s.RelevantChunks {
		if precs[c] == "INT2" {
			t.Errorf("relevant chunk %d assigned INT2", c)
		}
	}
}

func TestSearchOnlyRequiresCocktail(t *testing.T) {
	p, err := New(Config{Method: "Atom"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, serr := p.SearchOnly([]string{"x"}, []string{"x"})
	if serr == nil {
		t.Fatal("expected method error")
	}
	if !strings.Contains(serr.Error(), "Cocktail") {
		t.Fatalf("unhelpful error: %v", serr)
	}
}

func TestSampleDeterminism(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.NewSample("LCC", 9)
	b, _ := p.NewSample("LCC", 9)
	if strings.Join(a.Context, " ") != strings.Join(b.Context, " ") {
		t.Fatal("samples not deterministic")
	}
}

func TestDisableReorderStillCorrect(t *testing.T) {
	p, err := New(Config{DisableReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	score, _ := p.Score("Qasper", res.Answer, s.Answer)
	if score < 0.7 {
		t.Errorf("no-reorder accuracy %v (reordering must not affect results)", score)
	}
	if res.Plan.Segments <= 3 {
		t.Errorf("unreordered plan should be fragmented, got %d segments", res.Plan.Segments)
	}
}
