// Package cocktail is the public API of the Cocktail reproduction:
// chunk-adaptive mixed-precision KV cache quantization for long-context
// LLM inference (Tao et al., DATE 2025), implemented in pure Go on a
// simulated substrate (see DESIGN.md for the substitution map).
//
// A Pipeline bundles a synthetic lexicon, a constructed induction-head
// transformer standing in for one of the paper's models, and a KV-cache
// quantization method. Text in and out is word-token based:
//
//	p, _ := cocktail.New(cocktail.Config{})        // Cocktail on Llama2-7B-sim
//	s, _ := p.NewSample("Qasper", 42)              // a planted-needle QA task
//	res, _ := p.Answer(s.Context, s.Query)         // quantize, decode
//	score, _ := p.Score("Qasper", res.Answer, s.Answer)
//
// The Result reports the quantization plan Module I chose and the memory
// footprint Module II achieved, so applications can inspect the
// precision/accuracy trade directly.
package cocktail

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datasets"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rngx"
	"repro/internal/search"
)

// Config selects the pipeline components. Zero values mean defaults
// (Cocktail method, Llama2-7B-sim model, Contriever encoder, α=0.6,
// β=0.1, chunk size 32, reordering on).
type Config struct {
	// Model is one of Models().
	Model string
	// Method is one of Methods().
	Method string
	// Encoder is one of Encoders(); only used by the Cocktail method.
	Encoder string
	// Alpha and Beta are the Module I thresholds' hyperparameters. Nil
	// means the paper defaults (α=0.6, β=0.1); an explicit zero is valid
	// (search accepts the full [0,1] range) and is not overridden. Use
	// Float to build the pointers inline.
	Alpha, Beta *float64
	// ChunkSize is the search granularity in tokens.
	ChunkSize int
	// DisableReorder turns off Module II chunk reordering (ablation).
	DisableReorder bool
	// MaxSeq bounds total sequence length (context + query + output).
	MaxSeq int
	// LexiconSeed selects the synthetic language; fixed corpora come from
	// fixed seeds.
	LexiconSeed uint64
}

// Float returns a pointer to v, for the Config fields where nil selects
// the default and zero is a meaningful explicit value.
func Float(v float64) *float64 { return &v }

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = "Llama2-7B-sim"
	}
	if c.Method == "" {
		c.Method = "Cocktail"
	}
	if c.Encoder == "" {
		c.Encoder = "contriever"
	}
	// Re-point at fresh allocations even when set, so the caller cannot
	// mutate the pipeline's stored config through a shared pointer.
	if c.Alpha == nil {
		c.Alpha = Float(0.6)
	} else {
		c.Alpha = Float(*c.Alpha)
	}
	if c.Beta == nil {
		c.Beta = Float(0.1)
	} else {
		c.Beta = Float(*c.Beta)
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 32
	}
	if c.MaxSeq == 0 {
		c.MaxSeq = 2048
	}
	if c.LexiconSeed == 0 {
		c.LexiconSeed = 1
	}
	return c
}

// Models lists the simulated model names (stand-ins for the paper's four
// evaluation models).
func Models() []string {
	var out []string
	for _, cfg := range model.Registry(16) {
		out = append(out, cfg.Name)
	}
	return out
}

// Methods lists the KV-cache quantization methods of Table II.
func Methods() []string {
	return []string{"FP16", "Atom", "KIVI", "KVQuant", "Cocktail"}
}

// Encoders lists the Module I encoder names of Table IV.
func Encoders() []string {
	return []string{"contriever", "llm-embedder", "ada-002", "bm25"}
}

// DatasetInfo describes one benchmark task (Table I).
type DatasetInfo struct {
	Name, Task, Metric string
}

// Datasets lists the LongBench-analog tasks.
func Datasets() []DatasetInfo {
	var out []DatasetInfo
	for _, d := range datasets.All() {
		out = append(out, DatasetInfo{Name: d.Name, Task: d.Task, Metric: d.Metric.String()})
	}
	return out
}

// Pipeline is a ready-to-run inference stack.
//
// A Pipeline is immutable after New and safe for concurrent use: Answer,
// SearchOnly, NewSample and Score may be called from any number of
// goroutines. The shared lexicon, model weights and encoder tables are
// read-only; every call allocates its own per-request state (prefill
// builder, quantization plan, sealed cache, decoder scratch).
//
//cocktail:immutable
type Pipeline struct {
	cfg    Config
	lex    *corpus.Lexicon
	model  *model.Model
	method core.Method
	// fingerprint caches Fingerprint()'s config hash (set once in New).
	fingerprint string
}

// New builds a pipeline for cfg.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	lex := corpus.NewLexicon(corpus.Defaults(cfg.LexiconSeed))

	var mcfg *model.Config
	for _, mc := range model.Registry(cfg.MaxSeq) {
		if mc.Name == cfg.Model {
			mc := mc
			mcfg = &mc
			break
		}
	}
	if mcfg == nil {
		return nil, fmt.Errorf("cocktail: unknown model %q (have %v)", cfg.Model, Models())
	}
	m, err := model.New(*mcfg, lex)
	if err != nil {
		return nil, err
	}

	var meth core.Method
	if cfg.Method == "Cocktail" {
		ct := core.NewCocktail(lex)
		enc, err := core.EncoderByName(lex, cfg.Encoder)
		if err != nil {
			return nil, err
		}
		ct.Encoder = enc
		sc := search.Default()
		sc.Alpha, sc.Beta = *cfg.Alpha, *cfg.Beta
		sc.ChunkSize = cfg.ChunkSize
		sc.Reorder = !cfg.DisableReorder
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		ct.Search = sc
		meth = ct
	} else {
		meth, err = core.MethodByName(lex, cfg.Method)
		if err != nil {
			return nil, err
		}
	}
	p := &Pipeline{cfg: cfg, lex: lex, model: m, method: meth}
	p.fingerprint = p.computeFingerprint()
	return p, nil
}

// Config returns a copy of the pipeline's effective configuration. The
// Alpha/Beta pointers are freshly allocated so callers cannot mutate the
// pipeline's view through them.
func (p *Pipeline) Config() Config {
	cfg := p.cfg
	cfg.Alpha = Float(*p.cfg.Alpha)
	cfg.Beta = Float(*p.cfg.Beta)
	return cfg
}

// Vocabulary returns the closed word list of the synthetic language.
func (p *Pipeline) Vocabulary() []string { return p.lex.Vocab.Words() }

// Sample is one generated benchmark instance, in surface-word form.
type Sample struct {
	Context, Query, Answer []string
	// RelevantChunks are ground-truth chunk indices containing the needle.
	RelevantChunks []int
}

// NewSample generates a deterministic instance of a Table I dataset. An
// unsatisfiable configuration (e.g. a ChunkSize too small to host the
// dataset's needle span) is reported as an error.
func (p *Pipeline) NewSample(dataset string, seed uint64) (sample *Sample, err error) {
	d, err := datasets.ByName(dataset)
	if err != nil {
		return nil, err
	}
	// The generators panic on configurations they cannot satisfy; surface
	// that as an error at the public API boundary.
	defer func() {
		if r := recover(); r != nil {
			sample, err = nil, fmt.Errorf("cocktail: generating %s sample: %v", dataset, r)
		}
	}()
	ctxTokens := p.cfg.MaxSeq / 2
	if ctxTokens > 768 {
		ctxTokens = 768
	}
	s := d.Gen(rngx.New(seed), p.lex, datasets.GenConfig{
		ContextTokens: ctxTokens, ChunkSize: p.cfg.ChunkSize})
	return &Sample{
		Context:        p.lex.SurfacesOf(s.Context),
		Query:          p.lex.SurfacesOf(s.Query),
		Answer:         p.lex.SurfacesOf(s.Answer),
		RelevantChunks: s.RelevantChunks,
	}, nil
}

// Score evaluates a prediction with the dataset's Table I metric (0..1).
func (p *Pipeline) Score(dataset string, pred, ref []string) (float64, error) {
	d, err := datasets.ByName(dataset)
	if err != nil {
		return 0, err
	}
	return metrics.Score(d.Metric, pred, ref), nil
}

// PlanSummary reports what Module I decided and what it cost.
type PlanSummary struct {
	// ChunkPrecisions is the per-chunk precision ("INT2"/"INT4"/"FP16"…)
	// in logical chunk order.
	ChunkPrecisions []string
	// TokensByPrecision counts context tokens per precision.
	TokensByPrecision map[string]int
	// Segments is the number of contiguous same-precision runs per
	// layer/head after (optional) reordering.
	Segments int
	// ContextKVBytes is the sealed mixed-precision cache footprint;
	// FP16KVBytes is what an unquantized cache would cost.
	ContextKVBytes, FP16KVBytes int
}

// CompressionRatio is FP16 bytes over achieved bytes.
func (s PlanSummary) CompressionRatio() float64 {
	if s.ContextKVBytes == 0 {
		return 0
	}
	return float64(s.FP16KVBytes) / float64(s.ContextKVBytes)
}

// Result is the outcome of one Answer call.
type Result struct {
	// Answer holds the generated words (EOS excluded).
	Answer []string
	Plan   PlanSummary
}

// maxNewTokens is the decode budget of one Answer call; the sequence
// bound below reserves room for it on top of context + query.
const maxNewTokens = 64

// checkSeqBound verifies context + query + decode budget fit in MaxSeq.
func (p *Pipeline) checkSeqBound(ctxTokens, queryTokens int) error {
	if ctxTokens+queryTokens+2*maxNewTokens > p.cfg.MaxSeq {
		return fmt.Errorf("cocktail: context+query too long for MaxSeq %d", p.cfg.MaxSeq)
	}
	return nil
}

// Answer runs the full pipeline on (context, query): prefill, Module I
// search (or the baseline policy), Module II seal, and greedy decoding.
// All words must come from Vocabulary(). For repeated queries over the
// same context, Prefill/Session (or a SessionCache) skips the prefill
// stage and produces byte-identical results.
func (p *Pipeline) Answer(context, query []string) (*Result, error) {
	t, err := p.StartAnswer(context, query)
	if err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// buildResult assembles the public Result from a decoded cache and its
// plan; it is shared by the cold Answer path and the session path so the
// two report identical payloads.
func (p *Pipeline) buildResult(cache *kvcache.Cache, plan *kvcache.Plan, ctxTokens int, out []int) *Result {
	stats := cache.Stats()
	summary := PlanSummary{
		Segments:          stats.Segments,
		ContextKVBytes:    stats.ContextBytes,
		FP16KVBytes:       p.model.CacheConfig().FP16Bytes(ctxTokens),
		TokensByPrecision: map[string]int{},
	}
	for prec, n := range stats.TokensByPrec {
		summary.TokensByPrecision[prec.String()] = n
	}
	for _, prec := range plan.ChunkPrec {
		summary.ChunkPrecisions = append(summary.ChunkPrecisions, prec.String())
	}
	return &Result{Answer: p.lex.SurfacesOf(out), Plan: summary}
}

// SearchOnly runs Module I alone and returns the similarity scores,
// thresholds and per-chunk precisions without any model inference. It is
// only available when the pipeline method is Cocktail.
func (p *Pipeline) SearchOnly(context, query []string) (scores []float64, tlow, thigh float64, precisions []string, err error) {
	ct, ok := p.method.(*core.Cocktail)
	if !ok {
		return nil, 0, 0, nil, fmt.Errorf("cocktail: SearchOnly requires the Cocktail method, have %s", p.method.Name())
	}
	ctxIDs, err := p.encode(context)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	qIDs, err := p.encode(query)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	res, err := search.Run(ct.Encoder, ctxIDs, qIDs, ct.Search)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	for _, prec := range res.Plan.ChunkPrec {
		precisions = append(precisions, prec.String())
	}
	return res.Scores, res.TLow, res.THigh, precisions, nil
}

func (p *Pipeline) encode(words []string) ([]int, error) {
	ids := make([]int, len(words))
	for i, w := range words {
		id := p.lex.Vocab.ID(w)
		if id < 0 {
			return nil, fmt.Errorf("cocktail: word %q not in the synthetic vocabulary", w)
		}
		ids[i] = id
	}
	return ids, nil
}
