package cocktail

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sessioncache"
)

// TestSessionAnswerMatchesCold is the cache-transparency contract: for
// fixed seeds, answering through a session (warm path, prefill skipped,
// sealed cache reused) must be byte-identical to a cold Answer — answers
// and the full plan summary.
func TestSessionAnswerMatchesCold(t *testing.T) {
	for _, method := range []string{"Cocktail", "FP16", "KVQuant"} {
		p, err := New(Config{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		for _, dataset := range []string{"Qasper", "QMSum"} {
			s, err := p.NewSample(dataset, 17)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := p.Answer(s.Context, s.Query)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := p.Prefill(s.Context)
			if err != nil {
				t.Fatal(err)
			}
			// Twice: first call seals fresh, second hits the seal memo.
			for call := 0; call < 2; call++ {
				warm, err := sess.Answer(s.Query)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cold, warm) {
					t.Fatalf("%s/%s call %d: session result diverged\ncold: %+v\nwarm: %+v",
						method, dataset, call, cold, warm)
				}
			}
		}
	}
}

// TestSessionReplansPerQuery: Module I is query-adaptive, so a different
// query through the same session must still match its own cold run (the
// session may not reuse the previous query's plan).
func TestSessionReplansPerQuery(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.NewSample("Qasper", 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.NewSample("Qasper", 4)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Prefill(s1.Context)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]string{s1.Query, s2.Query, s1.Query} {
		cold, err := p.Answer(s1.Context, q)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := sess.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("session diverged from cold on re-planned query")
		}
	}
}

// TestSessionCacheTransparentAnswer: SessionCache.Answer must be a
// drop-in for Pipeline.Answer, and repeated contexts must hit the store.
func TestSessionCacheTransparentAnswer(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("TREC", 9)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSessionCache(p, SessionCacheOptions{MaxBytes: 32 << 20, TTL: time.Minute})
	for i := 0; i < 3; i++ {
		got, err := sc.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, got) {
			t.Fatalf("call %d: transparent answer diverged from cold", i)
		}
	}
	st := sc.Stats()
	// Call 0 misses prefill+seal; calls 1 and 2 hit both entries.
	if st.Misses != 2 || st.Hits != 4 || st.Entries != 2 {
		t.Fatalf("cache stats: %+v", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("implausible byte accounting: %+v", st)
	}
}

// TestSessionCacheIsolatesConfigs: equal contexts under different
// pipeline configurations must never share cache entries. Two pipelines
// with different models share ONE store; if the fingerprint namespace
// broke, config B would pick up config A's prefill KV and produce
// A-model answers.
func TestSessionCacheIsolatesConfigs(t *testing.T) {
	pa, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(Config{Model: "Mistral-7B-sim"})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Fingerprint() == pb.Fingerprint() {
		t.Fatal("distinct configs produced equal fingerprints")
	}
	s, err := pa.NewSample("Qasper", 11)
	if err != nil {
		t.Fatal(err)
	}
	store := sessioncache.New(sessioncache.Options{})
	for _, p := range []*Pipeline{pa, pb} {
		cold, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := p.prefill(s.Context, store) // same shared store for both
		if err != nil {
			t.Fatal(err)
		}
		warm, err := sess.Answer(s.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("%s: shared-store answer diverged from cold — cross-config leak",
				p.Config().Model)
		}
	}
	// Both configs inserted their own prefill + sealed entries: a key
	// collision would leave fewer than 4.
	if st := store.Stats(); st.Entries != 4 || st.Hits != 0 {
		t.Fatalf("expected 4 isolated entries and no cross-config hits: %+v", st)
	}
}

// TestConcurrentSessionsRaceClean runs many single-owner sessions (over
// both shared and distinct contexts) concurrently against one pipeline
// and one shared store. Under -race this is the reuse layer's
// thread-safety proof; outputs must equal the serial cold answers.
func TestConcurrentSessionsRaceClean(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSessionCache(p, SessionCacheOptions{MaxBytes: 64 << 20, TTL: time.Minute})

	const goroutines = 8
	type task struct {
		sample *Sample
		cold   *Result
	}
	// Goroutines 0-3 share one context; 4-7 get their own.
	tasks := make([]task, goroutines)
	shared, err := p.NewSample("Qasper", 100)
	if err != nil {
		t.Fatal(err)
	}
	sharedCold, err := p.Answer(shared.Context, shared.Query)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if i < 4 {
			tasks[i] = task{sample: shared, cold: sharedCold}
			continue
		}
		s, err := p.NewSample("QMSum", uint64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task{sample: s, cold: cold}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(tk task) {
			defer wg.Done()
			sess, err := sc.Prefill(tk.sample.Context)
			if err != nil {
				errs <- err
				return
			}
			for call := 0; call < 3; call++ {
				got, err := sess.Answer(tk.sample.Query)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(tk.cold, got) {
					errs <- errMismatch
					return
				}
			}
		}(tasks[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
}

// TestSessionCacheEvictsUnderPressure: a budget too small for every
// context must evict, never exceed its bytes, and still answer correctly.
func TestSessionCacheEvictsUnderPressure(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One prefilled 768-token builder is ~600 KiB; 1 MiB fits one context
	// (builder + sealed cache) but not three.
	sc := NewSessionCache(p, SessionCacheOptions{MaxBytes: 1 << 20})
	for i := 0; i < 3; i++ {
		s, err := p.NewSample("Qasper", uint64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, got) {
			t.Fatalf("context %d: answer diverged under eviction pressure", i)
		}
	}
	st := sc.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a 1 MiB budget: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
}

var errMismatch = errors.New("concurrent session answer diverged from serial cold answer")

// TestParseCachePolicy pins the flag spellings and rejects the rest.
func TestParseCachePolicy(t *testing.T) {
	for s, want := range map[string]CachePolicy{
		"": CachePolicyLRU, "lru": CachePolicyLRU, "2q": CachePolicy2Q,
		"a1": CachePolicyA1, "adaptive": CachePolicyAdaptive} {
		got, err := ParseCachePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseCachePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCachePolicy("arc"); err == nil {
		t.Fatal("unknown policy must be rejected")
	}
	for p, s := range map[CachePolicy]string{
		CachePolicyLRU: "lru", CachePolicy2Q: "2q",
		CachePolicyA1: "a1", CachePolicyAdaptive: "adaptive"} {
		if p.String() != s {
			t.Fatalf("policy String() spelling drifted: %v != %q", p, s)
		}
	}
}

// TestSessionCache2QByteIdentical: the 2Q cache's probation (first
// sighting, value dropped), admission (second) and hit (third) paths
// must all produce the cold answer, and the admission counters must
// tell that exact story.
func TestSessionCache2QByteIdentical(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 53)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSessionCache(p, SessionCacheOptions{
		MaxBytes: 8 << 20, TTL: time.Minute, Policy: CachePolicy2Q})
	for call := 0; call < 3; call++ {
		sess, err := sc.Prefill(s.Context)
		if err != nil {
			t.Fatal(err)
		}
		if hit, wantHit := sess.CachedPrefill(), call == 2; hit != wantHit {
			t.Fatalf("call %d: CachedPrefill = %v, want %v", call, hit, wantHit)
		}
		got, err := sess.Answer(s.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, got) {
			t.Fatalf("call %d: 2q answer diverged from cold", call)
		}
	}
	adm := sc.Stats().Admission
	if adm.Policy != "2q" || adm.ScanRejections != 2 || adm.GhostPromotions != 2 {
		t.Fatalf("admission history: %+v", adm)
	}
}

// TestSessionCachedSeal pins the CachedSeal observability contract: a
// fresh seal reports false, a repeated plan (memo) and a store hit from
// another session both report true.
func TestSessionCachedSeal(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 71)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSessionCache(p, SessionCacheOptions{MaxBytes: 32 << 20, TTL: time.Minute})
	sess, err := sc.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	if sess.CachedSeal() {
		t.Fatal("CachedSeal must be false before the first Answer")
	}
	if _, err := sess.Answer(s.Query); err != nil {
		t.Fatal(err)
	}
	if sess.CachedSeal() {
		t.Fatal("first Answer seals fresh: CachedSeal must be false")
	}
	if _, err := sess.Answer(s.Query); err != nil {
		t.Fatal(err)
	}
	if !sess.CachedSeal() {
		t.Fatal("repeated plan must hit the seal memo")
	}
	// A second session over the same context hits the store's sealed
	// entry without ever having sealed itself.
	other, err := sc.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Answer(s.Query); err != nil {
		t.Fatal(err)
	}
	if !other.CachedSeal() {
		t.Fatal("second session must reuse the shared sealed cache")
	}
}

// TestSessionCachePerKindSplit: SealedPct carves per-kind sub-budgets —
// answers stay byte-identical to cold, both kinds report dedicated
// budgets with per-kind admission state, and the sub-budgets sum to the
// total.
func TestSessionCachePerKindSplit(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 83)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSessionCache(p, SessionCacheOptions{
		MaxBytes: 32 << 20, TTL: time.Minute, Policy: CachePolicyA1,
		ProbationPct: 20, SealedPct: 40, SealedProbationPct: 30})
	for i := 0; i < 2; i++ {
		got, err := sc.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, got) {
			t.Fatalf("call %d: per-kind cached answer diverged from cold", i)
		}
	}
	st := sc.Stats()
	sealed, prefill := st.Kinds["sealed"], st.Kinds["prefill"]
	if !sealed.Dedicated || !prefill.Dedicated {
		t.Fatalf("kinds not dedicated: %+v", st.Kinds)
	}
	if sealed.MaxBytes+prefill.MaxBytes != st.MaxBytes {
		t.Fatalf("sub-budgets %d + %d do not sum to %d", sealed.MaxBytes, prefill.MaxBytes, st.MaxBytes)
	}
	if sealed.MaxBytes != int64(float64(st.MaxBytes)*0.40) {
		t.Fatalf("sealed sub-budget: %+v", sealed)
	}
	if sealed.Admission == nil || prefill.Admission == nil ||
		sealed.Admission.Policy != "a1" {
		t.Fatalf("per-kind admission state missing: %+v", st.Kinds)
	}
	if sealed.Entries == 0 || prefill.Entries == 0 {
		t.Fatalf("both kinds must be resident: %+v", st.Kinds)
	}
	if st.Admission.Policy != "a1" {
		t.Fatalf("aggregate policy label: %+v", st.Admission)
	}
}

// TestSessionCacheAutoTuneOffExact: the auto-tune off switch (the
// default) must reproduce the untuned cache's CacheStats exactly — not
// just the counters, the whole DeepEqual payload, with no tune block —
// so deployments that never opt in see byte-identical metrics.
func TestSessionCacheAutoTuneOffExact(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(auto bool) *SessionCache {
		return NewSessionCache(p, SessionCacheOptions{
			MaxBytes: 32 << 20, TTL: time.Minute,
			Policy: CachePolicyA1, SealedPct: 40, AutoTune: auto})
	}
	off, base := mk(false), NewSessionCache(p, SessionCacheOptions{
		MaxBytes: 32 << 20, TTL: time.Minute,
		Policy: CachePolicyA1, SealedPct: 40})
	for i := 0; i < 4; i++ {
		s, err := p.NewSample("TREC", uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		a, err := off.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		b, err := base.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sample %d: answers diverged with auto-tune off", i)
		}
	}
	so, sb := off.Stats(), base.Stats()
	if !reflect.DeepEqual(so, sb) {
		t.Fatalf("auto-tune off stats diverged from untuned cache:\n off:  %+v\n base: %+v", so, sb)
	}
	if so.Tune != nil {
		t.Fatal("tune block must be absent with auto-tune off")
	}

	// And opting in surfaces the block without touching correctness.
	on := mk(true)
	s, err := p.NewSample("TREC", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := on.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("auto-tuned cache changed an answer")
	}
	if st := on.Stats(); st.Tune == nil || st.Tune.Window <= 0 {
		t.Fatalf("auto-tuned cache missing tune block: %+v", st.Tune)
	}
}
