package cocktail

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// chunkOf returns a small vocabulary-valid word sequence to append,
// drawn from an independent sample's context.
func chunkOf(t *testing.T, p *Pipeline, seed uint64, n int) []string {
	t.Helper()
	s, err := p.NewSample("Qasper", seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Context) < n {
		t.Fatalf("sample context too short: %d < %d", len(s.Context), n)
	}
	return s.Context[:n]
}

// TestAppendMatchesColdConcat is the append half of the byte-identity
// contract: growing a session by Append must be indistinguishable — full
// Result, plan summary included — from a cold Answer over the
// concatenation, and from a fresh session prefilled on the
// concatenation, across methods and repeated growth.
func TestAppendMatchesColdConcat(t *testing.T) {
	for _, method := range []string{"Cocktail", "FP16", "KVQuant"} {
		p, err := New(Config{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NewSample("QMSum", 21)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := p.Prefill(s.Context)
		if err != nil {
			t.Fatal(err)
		}
		ctx := s.Context
		for round := 0; round < 3; round++ {
			chunk := chunkOf(t, p, uint64(300+round), 16)
			if err := sess.Append(chunk); err != nil {
				t.Fatal(err)
			}
			grown := make([]string, 0, len(ctx)+len(chunk))
			ctx = append(append(grown, ctx...), chunk...)
			if got, want := sess.ContextTokens(), len(ctx); got != want {
				t.Fatalf("%s round %d: ContextTokens %d, want %d", method, round, got, want)
			}
			cold, err := p.Answer(ctx, s.Query)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := sess.Answer(s.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cold, warm) {
				t.Fatalf("%s round %d: appended session diverged from cold concat\ncold: %+v\nwarm: %+v",
					method, round, cold, warm)
			}
			fresh, err := p.Prefill(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fres, err := fresh.Answer(s.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fres, warm) {
				t.Fatalf("%s round %d: appended session diverged from fresh session on concat", method, round)
			}
		}
	}
}

// TestAppendStoreProtocolMatchesCold: Append must mirror prefill's store
// protocol exactly, so a store that saw Prefill(base)+Append(chunk)
// is indistinguishable — per-kind CacheStats and all — from one that saw
// Prefill(base)+Prefill(base+chunk), and a later Prefill of the
// concatenation hits the builder Append inserted.
func TestAppendStoreProtocolMatchesCold(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 31)
	if err != nil {
		t.Fatal(err)
	}
	chunk := chunkOf(t, p, 310, 16)
	concat := append(append([]string{}, s.Context...), chunk...)

	opts := SessionCacheOptions{MaxBytes: 64 << 20, TTL: time.Minute}
	grow := NewSessionCache(p, opts)
	sess, err := grow.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Answer(s.Query); err != nil {
		t.Fatal(err)
	}

	cold := NewSessionCache(p, opts)
	if _, err := cold.Prefill(s.Context); err != nil {
		t.Fatal(err)
	}
	csess, err := cold.Prefill(concat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csess.Answer(s.Query); err != nil {
		t.Fatal(err)
	}

	if a, b := grow.Stats(), cold.Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("store protocol diverged\nappend: %+v\ncold:   %+v", a, b)
	}

	// The grown builder is shared state: a fresh session over the
	// concatenation must hit it.
	hit, err := grow.Prefill(concat)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CachedPrefill() {
		t.Fatal("Prefill(concat) must hit the builder Append inserted")
	}
	// And the base context's stored builder must be untouched by the
	// append (copy-on-append clone): it still answers correctly.
	base, err := grow.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	if !base.CachedPrefill() {
		t.Fatal("base context must still be resident")
	}
	coldBase, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.Answer(s.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldBase, got) {
		t.Fatal("append mutated the shared base builder")
	}
}

// TestAppendInvalidatesSealMemo: sealed caches cover a fixed token
// range, so Append must drop the plan memo — the next Answer re-seals
// fresh (CachedSeal false) and still matches cold.
func TestAppendInvalidatesSealMemo(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 41)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Answer(s.Query); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Answer(s.Query); err != nil {
		t.Fatal(err)
	}
	if !sess.CachedSeal() {
		t.Fatal("repeated plan must hit the seal memo before the append")
	}
	chunk := chunkOf(t, p, 410, 16)
	if err := sess.Append(chunk); err != nil {
		t.Fatal(err)
	}
	if sess.CachedSeal() {
		t.Fatal("Append must reset CachedSeal")
	}
	warm, err := sess.Answer(s.Query)
	if err != nil {
		t.Fatal(err)
	}
	if sess.CachedSeal() {
		t.Fatal("first Answer after Append must seal fresh — stale memo survived the append")
	}
	concat := append(append([]string{}, s.Context...), chunk...)
	cold, err := p.Answer(concat, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("post-append answer diverged from cold concat")
	}
}

// TestAppendErrors: failed appends must leave the session exactly as it
// was — context unchanged, still answering byte-identically — for both
// failure modes (unknown vocabulary, MaxSeq overflow). Appending zero
// words is a no-op, not an error.
func TestAppendErrors(t *testing.T) {
	p, err := New(Config{MaxSeq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 51)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.ContextTokens()

	// A MaxSeq=1024 sample context is ~512 tokens; a 600-word append
	// blows the 1024-token bound (context + append + 2×64 decode budget).
	big, err := p.NewSample("QMSum", 510)
	if err != nil {
		t.Fatal(err)
	}
	overflow := big.Context
	for len(overflow) < 600 {
		overflow = append(overflow, big.Context...)
	}
	cases := []struct {
		name  string
		chunk []string
		diag  string
	}{
		{"unknown-word", []string{"zzz-not-in-vocabulary"}, "vocabulary"},
		{"maxseq-overflow", overflow[:600], "MaxSeq"},
	}
	for _, tc := range cases {
		err := sess.Append(tc.chunk)
		if err == nil {
			t.Fatalf("%s: Append accepted, want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.diag) {
			t.Fatalf("%s: diagnostic %q missing %q", tc.name, err, tc.diag)
		}
		if got := sess.ContextTokens(); got != before {
			t.Fatalf("%s: context changed on failed append: %d -> %d", tc.name, before, got)
		}
		warm, err := sess.Answer(s.Query)
		if err != nil {
			t.Fatalf("%s: session unusable after failed append: %v", tc.name, err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("%s: answer diverged after failed append", tc.name)
		}
	}

	if err := sess.Append(nil); err != nil {
		t.Fatalf("empty append must be a no-op, got %v", err)
	}
	if got := sess.ContextTokens(); got != before {
		t.Fatalf("empty append changed context: %d -> %d", before, got)
	}
}

// TestTurnEmitted pins the streaming primitive: the concatenation of
// every Emitted batch equals Result().Answer, per-step batches carry at
// most one token, and a drained turn has nothing left to emit.
func TestTurnEmitted(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("TREC", 61)
	if err != nil {
		t.Fatal(err)
	}
	turn, err := p.StartAnswer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	for {
		running := turn.Step()
		batch := turn.Emitted()
		if len(batch) > 1 {
			t.Fatalf("one Step emitted %d tokens: %v", len(batch), batch)
		}
		streamed = append(streamed, batch...)
		if !running {
			break
		}
	}
	res := turn.Result()
	if !reflect.DeepEqual(streamed, res.Answer) {
		t.Fatalf("streamed tokens diverged from Result\nstreamed: %v\nresult:   %v", streamed, res.Answer)
	}
	if turn.Emitted() != nil {
		t.Fatal("drained turn must emit nothing")
	}
	// A buffered drain (Result without stepping) leaves everything for
	// one Emitted call — the watermark covers both consumption styles.
	turn2, err := p.StartAnswer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	res2 := turn2.Result()
	if got := turn2.Emitted(); !reflect.DeepEqual(got, res2.Answer) {
		t.Fatalf("post-drain Emitted %v, want full answer %v", got, res2.Answer)
	}
}
