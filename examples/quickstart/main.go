// Quickstart: run one long-context QA request through the Cocktail
// pipeline and inspect the chunk-adaptive quantization plan it chose.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	cocktail "repro"
)

func main() {
	// A default pipeline: Cocktail method (α=0.6, β=0.1, chunk size 32,
	// reordering on), Facebook-Contriever-sim encoder, Llama2-7B-sim model.
	p, err := cocktail.New(cocktail.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Generate a single-document QA task: a 768-word context with one
	// relevant passage, and a paraphrased query about it.
	s, err := p.NewSample("Qasper", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:      %s\n", strings.Join(s.Query, " "))
	fmt.Printf("reference:  %s\n", strings.Join(s.Answer, " "))

	// Answer it: prefill, chunk-level quantization search, chunk
	// reordering, mixed-precision sealing, greedy decoding.
	res, err := p.Answer(s.Context, s.Query)
	if err != nil {
		log.Fatal(err)
	}
	score, err := p.Score("Qasper", res.Answer, s.Answer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("answer:     %s\n", strings.Join(res.Answer, " "))
	fmt.Printf("F1:         %.3f\n", score)
	fmt.Printf("precisions: %v\n", res.Plan.TokensByPrecision)
	fmt.Printf("KV cache:   %d bytes (FP16 would be %d) -> %.2fx compression, %d segments\n",
		res.Plan.ContextKVBytes, res.Plan.FP16KVBytes,
		res.Plan.CompressionRatio(), res.Plan.Segments)
}
