// Serving under load: drive the discrete-event serving simulator with a
// Poisson request trace and compare how each quantization method holds up
// — batch sizes, throughput, and tail latency on one A800.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"repro/internal/hwmodel"
	"repro/internal/serving"
)

func main() {
	gpu := hwmodel.A800()
	dims := hwmodel.Llama2_7B()
	profiles := []hwmodel.Profile{
		hwmodel.ProfileFP16(),
		hwmodel.ProfileAtom(),
		hwmodel.ProfileKIVI(),
		hwmodel.ProfileKVQuant(0.01),
		hwmodel.ProfileCocktail(32, nil),
	}

	for _, rate := range []float64{0.2, 2, 20} {
		reqs := serving.PoissonTrace(42, 300, rate, 2000, 128)
		fmt.Printf("arrival rate %.1f req/s (%d requests, ctx 2000, out 128)\n", rate, len(reqs))
		fmt.Printf("  %-10s  %-12s  %-10s  %-10s  %-10s\n",
			"method", "tok/s", "mean batch", "mean lat", "p95 lat")
		stats, err := serving.CompareMethods(gpu, dims, profiles, reqs)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range profiles {
			st := stats[p.Name]
			fmt.Printf("  %-10s  %-12.0f  %-10.1f  %-10.2f  %-10.2f\n",
				p.Name, st.ThroughputTokS, st.MeanBatch, st.MeanLatency, st.P95Latency)
		}
		fmt.Println()
	}
	fmt.Println("Expected: at low rates the no-search methods win on latency; at high rates")
	fmt.Println("Cocktail's smaller cache admits bigger batches and wins on throughput.")
}
