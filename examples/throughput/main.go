// Serving throughput planning: use the hardware cost model to predict
// GPU memory, decode latency and batch throughput for each quantization
// method on a real model geometry — the analysis behind the paper's
// Figures 4-6, runnable for capacity planning.
//
//	go run ./examples/throughput
package main

import (
	"fmt"

	"repro/internal/hwmodel"
)

func main() {
	g := hwmodel.A800()
	dims := hwmodel.Llama2_7B()
	profiles := []hwmodel.Profile{
		hwmodel.ProfileFP16(),
		hwmodel.ProfileAtom(),
		hwmodel.ProfileKIVI(),
		hwmodel.ProfileKVQuant(0.01),
		hwmodel.ProfileCocktail(32, nil),
	}

	wl := hwmodel.QMSumWorkload(dims)
	fmt.Printf("model %s on %s, context %d tokens, batch %d\n\n",
		dims.Name, g.Name, wl.ContextTokens, wl.Batch)
	fmt.Printf("%-12s  %-12s  %-10s\n", "method", "memory (GB)", "TPOT (us)")
	for _, p := range profiles {
		fmt.Printf("%-12s  %-12.2f  %-10.0f\n", p.Name,
			float64(hwmodel.Memory(dims, wl, p))/(1<<30),
			hwmodel.TPOT(g, dims, wl, p)*1e6)
	}

	fmt.Printf("\nthroughput vs batch size (tokens/s; 0 = OOM)\n")
	fmt.Printf("%-8s", "batch")
	for _, p := range profiles {
		fmt.Printf("  %10s", p.Name)
	}
	fmt.Println()
	for _, b := range []int{1, 25, 50, 100, 200, 400} {
		w := hwmodel.Workload{ContextTokens: 2000, OutputTokens: 128, Batch: b}
		fmt.Printf("%-8d", b)
		for _, p := range profiles {
			fmt.Printf("  %10.0f", hwmodel.Throughput(g, dims, w, p))
		}
		fmt.Println()
	}
	fmt.Println("\nExpected: FP16 runs out of memory first; Cocktail trails at batch 1 " +
		"(search latency) and leads at scale.")
}
