// Document QA method comparison: answer the same single-document QA
// requests under every KV-cache quantization method of the paper's
// Table II and compare accuracy and KV footprint.
//
//	go run ./examples/docqa
package main

import (
	"fmt"
	"log"

	cocktail "repro"
)

const trials = 12

func main() {
	fmt.Printf("%-10s  %-8s  %-12s  %s\n", "method", "avg F1", "KV bytes", "tokens by precision")
	for _, method := range cocktail.Methods() {
		p, err := cocktail.New(cocktail.Config{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		var totalScore float64
		var bytes int
		mix := map[string]int{}
		for i := 0; i < trials; i++ {
			s, err := p.NewSample("Qasper", 100+uint64(i))
			if err != nil {
				log.Fatal(err)
			}
			res, err := p.Answer(s.Context, s.Query)
			if err != nil {
				log.Fatal(err)
			}
			sc, err := p.Score("Qasper", res.Answer, s.Answer)
			if err != nil {
				log.Fatal(err)
			}
			totalScore += sc
			bytes += res.Plan.ContextKVBytes
			for k, v := range res.Plan.TokensByPrecision {
				mix[k] += v
			}
		}
		fmt.Printf("%-10s  %-8.3f  %-12d  %v\n", method, totalScore/trials, bytes/trials, mix)
	}
	fmt.Println("\nExpected: FP16 and Cocktail lead on F1; Cocktail's KV footprint is the smallest.")
}
