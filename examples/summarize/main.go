// Summarization with hyperparameter knobs: show how α (INT2 aggressiveness)
// and β (FP16 retention) trade accuracy against KV memory on QMSum-style
// meeting summarization — the paper's Figure 7 in miniature.
//
//	go run ./examples/summarize
package main

import (
	"fmt"
	"log"

	cocktail "repro"
)

const trials = 10

func run(alpha, beta float64) (score float64, bytes int) {
	p, err := cocktail.New(cocktail.Config{Alpha: cocktail.Float(alpha), Beta: cocktail.Float(beta)})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		s, err := p.NewSample("QMSum", 500+uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Answer(s.Context, s.Query)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := p.Score("QMSum", res.Answer, s.Answer)
		if err != nil {
			log.Fatal(err)
		}
		score += sc
		bytes += res.Plan.ContextKVBytes
	}
	return score / trials, bytes / trials
}

func main() {
	fmt.Println("alpha sweep (beta = 0.1): larger alpha sends more chunks to INT2")
	fmt.Printf("%-6s  %-8s  %s\n", "alpha", "ROUGE-L", "avg KV bytes")
	for _, a := range []float64{0.2, 0.4, 0.6, 0.8} {
		sc, by := run(a, 0.1)
		fmt.Printf("%-6.1f  %-8.3f  %d\n", a, sc, by)
	}

	fmt.Println("\nbeta sweep (alpha = 0.6): larger beta keeps more chunks FP16")
	fmt.Printf("%-6s  %-8s  %s\n", "beta", "ROUGE-L", "avg KV bytes")
	for _, b := range []float64{0.05, 0.1, 0.2, 0.4} {
		sc, by := run(0.6, b)
		fmt.Printf("%-6.2f  %-8.3f  %d\n", b, sc, by)
	}

	fmt.Println("\nExpected: accuracy degrades as alpha grows; saturates as beta grows while memory rises.")
}
