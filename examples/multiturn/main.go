// Multi-turn sessions: prefill a document once, then answer a stream of
// follow-up queries against the retained KV cache — the dominant serving
// pattern the session/prefix cache exists for. The example measures cold
// vs warm latency per turn, verifies the warm answers are byte-identical
// to cold ones, and prints the cache counters at the end.
//
//	go run ./examples/multiturn
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	cocktail "repro"
)

const turns = 5

func main() {
	p, err := cocktail.New(cocktail.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// One document, several queries. The sample provides the document and
	// its planted query; further turns reuse queries from sibling samples
	// (every word is in the shared vocabulary, so they are valid turns
	// even though only turn 0 has a planted answer).
	doc, err := p.NewSample("Qasper", 42)
	if err != nil {
		log.Fatal(err)
	}
	queries := [][]string{doc.Query}
	for i := 1; i < turns; i++ {
		s, err := p.NewSample("Qasper", 42+uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		queries = append(queries, s.Query)
	}

	// A shared session cache: transparent reuse for sessions and plain
	// Answer calls alike.
	sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes: 32 << 20, TTL: 5 * time.Minute})

	start := time.Now()
	sess, err := sc.Prefill(doc.Context)
	if err != nil {
		log.Fatal(err)
	}
	prefillTime := time.Since(start)
	fmt.Printf("prefilled %d context tokens once in %v\n\n", sess.ContextTokens(), prefillTime)

	fmt.Printf("%-5s  %-12s  %-12s  %-9s  %s\n", "turn", "cold", "warm", "speedup", "identical")
	for i, q := range queries {
		start = time.Now()
		cold, err := p.Answer(doc.Context, q)
		if err != nil {
			log.Fatal(err)
		}
		coldTime := time.Since(start)

		start = time.Now()
		warm, err := sess.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		warmTime := time.Since(start)

		identical := strings.Join(cold.Answer, " ") == strings.Join(warm.Answer, " ")
		fmt.Printf("%-5d  %-12v  %-12v  %-9.1f  %v\n",
			i, coldTime, warmTime, float64(coldTime)/float64(warmTime), identical)
		if !identical {
			log.Fatalf("turn %d: warm answer diverged from cold answer", i)
		}
	}

	// A second client asking about the same document hits the shared
	// prefix cache even through the plain Answer signature.
	start = time.Now()
	if _, err := sc.Answer(doc.Context, doc.Query); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransparent repeat of turn 0 via SessionCache.Answer: %v\n", time.Since(start))

	st := sc.Stats()
	fmt.Printf("cache: %d hits, %d misses, %d entries, %.1f MiB resident\n",
		st.Hits, st.Misses, st.Entries, float64(st.Bytes)/(1<<20))
}
