package cocktail

// Integration tests exercising the full public pipeline across every
// dataset, model and method combination at small sample counts — the
// cross-module counterpart to the per-package unit suites.

import (
	"testing"
)

// TestAllDatasetsThroughCocktail runs two samples of every Table I task
// through the default pipeline and checks accuracy and compression.
func TestAllDatasetsThroughCocktail(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Datasets() {
		var total float64
		for seed := uint64(1); seed <= 2; seed++ {
			s, err := p.NewSample(d.Name, seed)
			if err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			res, err := p.Answer(s.Context, s.Query)
			if err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			sc, err := p.Score(d.Name, res.Answer, s.Answer)
			if err != nil {
				t.Fatal(err)
			}
			total += sc
			if res.Plan.CompressionRatio() < 1.5 {
				t.Errorf("%s seed %d: compression %.2f too low",
					d.Name, seed, res.Plan.CompressionRatio())
			}
		}
		if total/2 < 0.5 {
			t.Errorf("%s: Cocktail average %.2f over 2 samples", d.Name, total/2)
		}
	}
}

// TestAllModelsThroughPipeline: every simulated model answers a sample.
func TestAllModelsThroughPipeline(t *testing.T) {
	for _, modelName := range Models() {
		p, err := New(Config{Model: modelName})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NewSample("TREC", 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatalf("%s: %v", modelName, err)
		}
		sc, err := p.Score("TREC", res.Answer, s.Answer)
		if err != nil {
			t.Fatal(err)
		}
		if sc != 1 {
			t.Errorf("%s: TREC classification failed (score %v, pred %v, want %v)",
				modelName, sc, res.Answer, s.Answer)
		}
	}
}

// TestEncoderConfigsEndToEnd: every Table IV encoder drives Module I.
func TestEncoderConfigsEndToEnd(t *testing.T) {
	for _, enc := range Encoders() {
		p, err := New(Config{Encoder: enc})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NewSample("Qasper", 11)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Answer(s.Context, s.Query); err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
	}
}

// TestAlphaExtremes: α=0.99 sends almost everything to INT2 and still
// produces a plan that covers the full context; α=0.01 sends almost
// nothing.
func TestAlphaExtremes(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.99} {
		p, err := New(Config{Alpha: Float(alpha)})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.NewSample("Qasper", 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Answer(s.Context, s.Query)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range res.Plan.TokensByPrecision {
			total += n
		}
		if total != len(s.Context) {
			t.Fatalf("alpha=%v: plan covers %d of %d tokens", alpha, total, len(s.Context))
		}
		int2 := res.Plan.TokensByPrecision["INT2"]
		if alpha == 0.99 && int2 < len(s.Context)/2 {
			t.Errorf("alpha=0.99 should be INT2-heavy, got %v", res.Plan.TokensByPrecision)
		}
		if alpha == 0.01 && int2 > len(s.Context)/2 {
			t.Errorf("alpha=0.01 should avoid INT2, got %v", res.Plan.TokensByPrecision)
		}
	}
}

// TestRepeatAnswerDeterministic: the same request answers identically.
func TestRepeatAnswerDeterministic(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("LCC", 21)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Answer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Answer) != len(b.Answer) {
		t.Fatal("nondeterministic answer length")
	}
	for i := range a.Answer {
		if a.Answer[i] != b.Answer[i] {
			t.Fatal("nondeterministic answer")
		}
	}
}
