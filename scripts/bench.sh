#!/usr/bin/env bash
# bench.sh runs the serving-path benchmark suite (warm session answers,
# session append vs re-prefill, prefix cache under scan, mixed-kind
# workload, batched serve throughput, streamed time-to-first-token,
# cost-gate admission overhead, tenant-fairness dispatch cost, store
# lock-contention 1 vs 8 shards, session-registry churn) and converts
# the output to BENCH_PR10.json at the repo root via cocktail-benchjson.
#
#   BENCHTIME=1x   per-benchmark time/iterations (default 1x: a smoke
#                  run; use e.g. 2s for a measurement run)
#   OUT=...        output path (default BENCH_PR10.json)
#
# CI diffs the result against the committed previous snapshot with
# `cocktail-benchjson -compare`; at the default 1x smoke setting only
# the deterministic hit-rate metrics gate (timing metrics of 1-iteration
# runs are skipped by design).
#
# The contention benchmark's headline claim — sharded >= 2x the
# single-mutex store — only manifests at GOMAXPROCS >= 4, where
# independent mutexes stop serializing; on fewer cores the sharded arm
# pays a small routing overhead instead (see DESIGN.md "Sharded store &
# persistence" for the measured numbers on both core counts).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_PR10.json}"

{
  go test -run '^$' -bench '^(BenchmarkSessionAnswerWarm|BenchmarkAppendVsReprefill)$' -benchtime "$benchtime" .
  go test -run '^$' -bench '^(BenchmarkPrefixCacheUnderScan|BenchmarkMixedKindWorkload|BenchmarkBatchedServeThroughput|BenchmarkStreamTTFT|BenchmarkCostAdmission|BenchmarkTenantFairness)$' \
    -benchtime "$benchtime" ./internal/workload
  go test -run '^$' -bench '^BenchmarkStoreContention$' -benchtime "$benchtime" ./internal/sessioncache
  go test -run '^$' -bench '^BenchmarkSessionRegistryChurn$' -benchtime "$benchtime" ./internal/httpapi
} | tee /dev/stderr | go run ./cmd/cocktail-benchjson -o "$out"

echo "wrote $out" >&2
