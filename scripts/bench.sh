#!/usr/bin/env bash
# bench.sh runs the serving-path benchmark trio (warm session answers,
# prefix cache under scan, mixed-kind workload) and converts the output
# to BENCH_PR6.json at the repo root via cocktail-benchjson.
#
#   BENCHTIME=1x   per-benchmark time/iterations (default 1x: a smoke
#                  run; use e.g. 2s for a measurement run)
#   OUT=...        output path (default BENCH_PR6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_PR6.json}"

{
  go test -run '^$' -bench '^BenchmarkSessionAnswerWarm$' -benchtime "$benchtime" .
  go test -run '^$' -bench '^(BenchmarkPrefixCacheUnderScan|BenchmarkMixedKindWorkload)$' \
    -benchtime "$benchtime" ./internal/workload
} | tee /dev/stderr | go run ./cmd/cocktail-benchjson -o "$out"

echo "wrote $out" >&2
