#!/usr/bin/env bash
# bench.sh runs the serving-path benchmark quartet (warm session
# answers, prefix cache under scan, mixed-kind workload, batched serve
# throughput) and converts the output to BENCH_PR7.json at the repo root
# via cocktail-benchjson.
#
#   BENCHTIME=1x   per-benchmark time/iterations (default 1x: a smoke
#                  run; use e.g. 2s for a measurement run)
#   OUT=...        output path (default BENCH_PR7.json)
#
# CI diffs the result against the committed previous snapshot with
# `cocktail-benchjson -compare`; at the default 1x smoke setting only
# the deterministic hit-rate metrics gate (timing metrics of 1-iteration
# runs are skipped by design).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_PR7.json}"

{
  go test -run '^$' -bench '^BenchmarkSessionAnswerWarm$' -benchtime "$benchtime" .
  go test -run '^$' -bench '^(BenchmarkPrefixCacheUnderScan|BenchmarkMixedKindWorkload|BenchmarkBatchedServeThroughput)$' \
    -benchtime "$benchtime" ./internal/workload
} | tee /dev/stderr | go run ./cmd/cocktail-benchjson -o "$out"

echo "wrote $out" >&2
