package cocktail

// Benchmark harness: one testing.B benchmark per paper table/figure (the
// bench regenerates the experiment and reports its key quantities as
// custom metrics), plus microbenchmarks of the quantized kernels the
// system runs on. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from the simulated substrate (see DESIGN.md); the
// shapes are asserted by the test suite, the benches make them observable.

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/f16"
	"repro/internal/hwmodel"
	"repro/internal/kvcache"
	"repro/internal/mathx"
	"repro/internal/quant"
	"repro/internal/rngx"
	"repro/internal/serving"
)

// benchEnv is sized so one experiment iteration stays in seconds.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv(experiments.Config{
		Samples: 8, ContextTokens: 512, MaxSeq: 2048, MaxNew: 24, Seed: 2025})
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func parse(b *testing.B, s string) float64 {
	b.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		b.Fatalf("non-numeric cell %q: %v", s, err)
	}
	return v
}

// BenchmarkTable2Accuracy regenerates the Table II accuracy grid
// (Llama2-7B-sim row set) and reports per-method averages.
func BenchmarkTable2Accuracy(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table2(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			avgCol := len(tab.Header) - 1
			b.ReportMetric(parse(b, tab.Rows[0][avgCol]), "fp16-avg")
			b.ReportMetric(parse(b, tab.Rows[4][avgCol]), "cocktail-avg")
		}
	}
}

// BenchmarkTable3ChunkSize regenerates the chunk-size sweep.
func BenchmarkTable3ChunkSize(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table3(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(parse(b, tab.Rows[0][3]), "rouge-chunk32")
			b.ReportMetric(parse(b, tab.Rows[0][6]), "rouge-chunk256")
		}
	}
}

// BenchmarkTable4Encoders regenerates the encoder comparison.
func BenchmarkTable4Encoders(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table4(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(parse(b, tab.Rows[4][1]), "contriever-qasper")
			b.ReportMetric(parse(b, tab.Rows[2][1]), "bm25-qasper")
		}
	}
}

// BenchmarkTable5Ablation regenerates the module ablation.
func BenchmarkTable5Ablation(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table5(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(parse(b, tab.Rows[1][1]), "score-noModuleI")
			b.ReportMetric(parse(b, tab.Rows[2][2]), "memGB-noModuleII")
			b.ReportMetric(parse(b, tab.Rows[3][1]), "score-cocktail")
		}
	}
}

// BenchmarkFig1Heatmap regenerates the similarity heatmap.
func BenchmarkFig1Heatmap(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		h := experiments.Fig1(env)
		if len(h.Data) != 10 {
			b.Fatal("bad heatmap")
		}
	}
}

// BenchmarkFig4Memory regenerates the per-model memory comparison.
func BenchmarkFig4Memory(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(parse(b, tab.Rows[0][1]), "llama7b-fp16-GB")
			b.ReportMetric(parse(b, tab.Rows[0][5]), "llama7b-cocktail-GB")
		}
	}
}

// BenchmarkFig5TPOT regenerates the per-model TPOT comparison.
func BenchmarkFig5TPOT(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig5(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(parse(b, tab.Rows[0][1]), "llama7b-fp16-us")
			b.ReportMetric(parse(b, tab.Rows[0][5]), "llama7b-cocktail-us")
		}
	}
}

// BenchmarkFig6Throughput regenerates the batch-size throughput sweep.
func BenchmarkFig6Throughput(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := fig.Series[len(fig.Series)-1] // Cocktail
			b.ReportMetric(last.Y[0], "cocktail-b1-tok/s")
		}
	}
}

// BenchmarkFig7AlphaBeta regenerates the hyperparameter sweeps.
func BenchmarkFig7AlphaBeta(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		fa, fb, err := experiments.Fig7(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(fa.Series[0].Y[0], "rouge-alpha0.1")
			b.ReportMetric(fa.Series[0].Y[len(fa.Series[0].Y)-1], "rouge-alpha0.9")
			b.ReportMetric(fb.Series[0].Y[0], "rouge-beta0.02")
		}
	}
}

// BenchmarkPipelineAnswer measures one full public-API request
// (prefill + search + seal + decode).
func BenchmarkPipelineAnswer(b *testing.B) {
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Answer(s.Context, s.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionAnswerWarm measures a warm-session Answer against
// BenchmarkPipelineAnswer's cold path: the session retains the prefilled
// context KV, so each iteration pays only Module I planning, a memoized
// seal lookup and decoding — prefill is skipped entirely. The ns/op gap
// to BenchmarkPipelineAnswer is the cross-request reuse win.
func BenchmarkSessionAnswerWarm(b *testing.B) {
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 7)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := p.Prefill(s.Context)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Answer(s.Query); err != nil { // warm the seal memo
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Answer(s.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendVsReprefill measures the two ways a live session can
// grow by a 24-word chunk: Session.Append delta-prefills just the chunk
// onto the retained context KV (O(chunk) work), while the alternative —
// re-prefilling the concatenation from scratch — repays the whole
// context. The ns/op gap is the append win, and it widens with context
// length; both paths produce byte-identical sessions (append_test.go).
func BenchmarkAppendVsReprefill(b *testing.B) {
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 7)
	if err != nil {
		b.Fatal(err)
	}
	src, err := p.NewSample("Qasper", 70)
	if err != nil {
		b.Fatal(err)
	}
	chunk := src.Context[:24]
	concat := append(append([]string{}, s.Context...), chunk...)
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer() // base-session prefill is the cost append avoids
			sess, err := p.Prefill(s.Context)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := sess.Append(chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reprefill", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Prefill(concat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSessionCacheAnswerHit measures the fully transparent path: a
// repeated (context, query) through SessionCache.Answer, hitting both the
// prefill and the sealed-cache entries of the shared store.
func BenchmarkSessionCacheAnswerHit(b *testing.B) {
	p, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 7)
	if err != nil {
		b.Fatal(err)
	}
	sc := NewSessionCache(p, SessionCacheOptions{})
	if _, err := sc.Answer(s.Context, s.Query); err != nil { // populate
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Answer(s.Context, s.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel microbenchmarks -------------------------------------------

func benchRows(n, d int) []float32 {
	return rngx.New(9).GaussianVec(n*d, 1)
}

// BenchmarkKernelFP16Scores measures the FP16 attention score kernel (mm).
func BenchmarkKernelFP16Scores(b *testing.B) {
	const n, d = 1024, 48
	data := benchRows(n, d)
	rows := f16.FromSlice(data)
	q := rngx.New(3).GaussianVec(d, 1)
	buf := make([]float32, d)
	scores := make([]float32, n)
	b.SetBytes(int64(2 * n * d))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < n; t++ {
			f16.ToSliceInto(buf, rows[t*d:(t+1)*d])
			scores[t] = mathx.Dot(q, buf)
		}
	}
}

// BenchmarkKernelINT4Scores measures the fused INT4 score kernel (fqm).
func BenchmarkKernelINT4Scores(b *testing.B) {
	benchQuantScores(b, quant.INT4)
}

// BenchmarkKernelINT2Scores measures the fused INT2 score kernel (fqm).
func BenchmarkKernelINT2Scores(b *testing.B) {
	benchQuantScores(b, quant.INT2)
}

func benchQuantScores(b *testing.B, bits quant.Bits) {
	const n, d = 1024, 48
	data := benchRows(n, d)
	qt := quant.Quantize(data, n, d, quant.Config{Bits: bits})
	q := rngx.New(3).GaussianVec(d, 1)
	scores := make([]float32, n)
	b.SetBytes(int64(qt.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt.ScoresInto(scores, q)
	}
}

// BenchmarkCacheAttend measures full segment attention (Algorithm 1) over
// a mixed-precision cache.
func BenchmarkCacheAttend(b *testing.B) {
	cfg := kvcache.Config{Layers: 2, Heads: 1, HeadDim: 48, GroupSize: 32}
	r := rngx.New(5)
	builder := kvcache.NewBuilder(cfg)
	const n = 1024
	for t := 0; t < n; t++ {
		builder.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			builder.Append(l, 0, r.GaussianVec(48, 1), r.GaussianVec(48, 1))
		}
	}
	plan := kvcache.UniformPlan(n, 32, kvcache.INT2, true)
	for i := range plan.ChunkPrec {
		switch i % 4 {
		case 0:
			plan.ChunkPrec[i] = kvcache.FP16
		case 1, 2:
			plan.ChunkPrec[i] = kvcache.INT4
		}
	}
	cache, err := builder.Seal(plan)
	if err != nil {
		b.Fatal(err)
	}
	q := r.GaussianVec(48, 1)
	out := make([]float32, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Attend(i%2, 0, q, 0.2, out)
	}
}

// BenchmarkQuantizeSeal measures Module II sealing cost (quantizing a full
// context KV under a mixed plan).
func BenchmarkQuantizeSeal(b *testing.B) {
	cfg := kvcache.Config{Layers: 2, Heads: 1, HeadDim: 48, GroupSize: 32}
	r := rngx.New(5)
	builder := kvcache.NewBuilder(cfg)
	const n = 1024
	for t := 0; t < n; t++ {
		builder.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			builder.Append(l, 0, r.GaussianVec(48, 1), r.GaussianVec(48, 1))
		}
	}
	plan := kvcache.UniformPlan(n, 32, kvcache.INT2, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Seal(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModel measures the analytic hardware model (it must be
// cheap enough to sweep).
func BenchmarkCostModel(b *testing.B) {
	g := hwmodel.A800()
	d := hwmodel.Llama2_7B()
	p := hwmodel.ProfileCocktail(32, nil)
	wl := hwmodel.Workload{ContextTokens: 3500, OutputTokens: 128, Batch: 8}
	for i := 0; i < b.N; i++ {
		_ = hwmodel.Throughput(g, d, wl, p)
	}
}

// --- Design-choice ablations ------------------------------------------
//
// Each AblationX bench quantizes the same Gaussian KV-like data two ways
// and reports the mean absolute reconstruction error of both, making the
// design decisions in DESIGN.md §5 measurable.

func ablationData() ([]float32, int, int) {
	const n, d = 512, 48
	return rngx.New(77).GaussianVec(n*d, 0.15), n, d
}

// BenchmarkAblationAsymmetricVsSymmetric: the asymmetric min/max grid the
// cache uses vs a symmetric max|x| grid.
func BenchmarkAblationAsymmetricVsSymmetric(b *testing.B) {
	data, n, d := ablationData()
	var errA, errS float64
	for i := 0; i < b.N; i++ {
		qa := quant.Quantize(data, n, d, quant.Config{Bits: quant.INT4})
		qs := quant.SymmetricQuantize(data, n, d, quant.Config{Bits: quant.INT4})
		errA = mathx.MeanAbsDiff(qa.Dequantize(), data)
		errS = mathx.MeanAbsDiff(qs.Dequantize(), data)
	}
	b.ReportMetric(errA*1e3, "asym-err(milli)")
	b.ReportMetric(errS*1e3, "sym-err(milli)")
}

// BenchmarkAblationCodebookVsUniform: fixed Gaussian nuq codebook vs the
// uniform grid (the KVQuant design point).
func BenchmarkAblationCodebookVsUniform(b *testing.B) {
	data, n, d := ablationData()
	var errU, errC float64
	for i := 0; i < b.N; i++ {
		qu := quant.Quantize(data, n, d, quant.Config{Bits: quant.INT4, GroupSize: 128})
		qc := quant.Quantize(data, n, d, quant.Config{
			Bits: quant.INT4, GroupSize: 128, Codebook: quant.GaussianCodebook(quant.INT4)})
		errU = mathx.MeanAbsDiff(qu.Dequantize(), data)
		errC = mathx.MeanAbsDiff(qc.Dequantize(), data)
	}
	b.ReportMetric(errU*1e3, "uniform-err(milli)")
	b.ReportMetric(errC*1e3, "codebook-err(milli)")
}

// BenchmarkAblationFittedCodebook: Lloyd-Max fitted codebook vs the fixed
// Gaussian one, including the fitting cost.
func BenchmarkAblationFittedCodebook(b *testing.B) {
	data, n, d := ablationData()
	var errG, errF float64
	for i := 0; i < b.N; i++ {
		fitted := quant.FitCodebook(quant.INT4, data, 8)
		qg := quant.Quantize(data, n, d, quant.Config{
			Bits: quant.INT4, GroupSize: 128, Codebook: quant.GaussianCodebook(quant.INT4)})
		qf := quant.Quantize(data, n, d, quant.Config{
			Bits: quant.INT4, GroupSize: 128, Codebook: fitted})
		errG = mathx.MeanAbsDiff(qg.Dequantize(), data)
		errF = mathx.MeanAbsDiff(qf.Dequantize(), data)
	}
	b.ReportMetric(errG*1e3, "gaussian-err(milli)")
	b.ReportMetric(errF*1e3, "fitted-err(milli)")
}

// BenchmarkAblationAxis: per-token vs per-channel grouping on data with
// outlier channels (the Atom vs KIVI distinction).
func BenchmarkAblationAxis(b *testing.B) {
	_, n, d := ablationData()
	r := rngx.New(78)
	data := make([]float32, n*d)
	for i := range data {
		scale := float32(0.15)
		if (i%d)%24 == 0 {
			scale = 0.4 // outlier channels as in the model substrate
		}
		data[i] = r.NormFloat32() * scale
	}
	var errT, errC float64
	for i := 0; i < b.N; i++ {
		qt := quant.Quantize(data, n, d, quant.Config{Bits: quant.INT4, Axis: quant.PerToken})
		qc := quant.Quantize(data, n, d, quant.Config{Bits: quant.INT4, Axis: quant.PerChannel})
		errT = mathx.MeanAbsDiff(qt.Dequantize(), data)
		errC = mathx.MeanAbsDiff(qc.Dequantize(), data)
	}
	b.ReportMetric(errT*1e3, "per-token-err(milli)")
	b.ReportMetric(errC*1e3, "per-channel-err(milli)")
}

// BenchmarkServingSimulation: the Figure 6 serving-level restatement.
func BenchmarkServingSimulation(b *testing.B) {
	reqs := serving.PoissonTrace(9, 200, 5, 2000, 128)
	cfg := serving.Config{
		GPU: hwmodel.A800(), Model: hwmodel.Llama2_7B(),
		Profile: hwmodel.ProfileCocktail(32, nil),
	}
	var tput float64
	for i := 0; i < b.N; i++ {
		st, err := serving.Simulate(cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		tput = st.ThroughputTokS
	}
	b.ReportMetric(tput, "tok/s")
}
