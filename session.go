package cocktail

// Cross-request KV-cache reuse: the incremental path of the public API.
//
// A cold Answer pays prefill (quadratic attention over the context),
// quantization search, sealing and decoding on every call. Multi-turn and
// repeated-context traffic re-pays the prefill — by far the dominant cost
// — for the same context words each time. The types here eliminate that:
//
//   - Session  — prefill once (Pipeline.Prefill), then Answer any number
//     of queries against the retained context KV. The quantization plan
//     is still recomputed per query (Module I is query-adaptive), but the
//     sealed cache is memoized per plan and decoding runs on a Fork, so a
//     repeated plan skips quantization too.
//   - SessionCache — a byte-accounted, TTL'd LRU (internal/sessioncache)
//     shared across sessions and plain Answer calls, keyed by (config
//     fingerprint, context hash). SessionCache.Answer is a drop-in
//     replacement for Pipeline.Answer that hits the cache transparently.
//
// Results are byte-identical to the cold path by construction: prefill,
// planning, sealing and greedy decoding are all deterministic, the
// session merely skips recomputing stages whose inputs are unchanged.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/kvcache"
	"repro/internal/sessioncache"
)

// Fingerprint returns a stable hash of the pipeline's effective
// configuration (model, method, encoder, hyperparameters, lexicon seed).
// Two pipelines with equal fingerprints produce identical outputs for
// identical inputs, so the fingerprint namespaces all cross-request cache
// keys: a cache entry can never leak across configurations. The hash is
// computed once at New (the Pipeline is immutable).
func (p *Pipeline) Fingerprint() string { return p.fingerprint }

// computeFingerprint hashes the effective config; called from New.
func (p *Pipeline) computeFingerprint() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%v|%v|%d|%t|%d|%d",
		p.cfg.Model, p.cfg.Method, p.cfg.Encoder, *p.cfg.Alpha, *p.cfg.Beta,
		p.cfg.ChunkSize, p.cfg.DisableReorder, p.cfg.MaxSeq, p.cfg.LexiconSeed)))
	return hex.EncodeToString(h[:12])
}

// hashTokens hashes a token-id sequence (the cache key for a context).
func hashTokens(ids []int) string {
	h := sha256.New()
	var buf [8]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// planFingerprint hashes a quantization plan plus seal options: two equal
// fingerprints seal to byte-identical caches from the same builder.
func planFingerprint(plan *kvcache.Plan, opts kvcache.SealOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%d|%t|%d|%d|%d|%t|", plan.NumTokens, plan.ChunkSize, plan.Reorder,
		opts.GroupSize, opts.KAxis, opts.VAxis, opts.UseCodebook)
	for _, prec := range plan.ChunkPrec {
		h.Write([]byte{byte(prec)})
	}
	if plan.TokenPrec != nil {
		h.Write([]byte{0xff})
		for _, prec := range plan.TokenPrec {
			h.Write([]byte{byte(prec)})
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// Session is the incremental counterpart of Answer: the context is
// prefilled once and retained, each Answer call reuses it. A Session is
// the single-owner mutable object of the concurrency contract — it is
// NOT safe for concurrent use (callers serialize Answer calls or hold one
// Session per goroutine). Everything a Session shares with other sessions
// — the Pipeline, the prefilled builder, pristine sealed caches, the
// backing store — is read-only or internally locked, so any number of
// Sessions may run concurrently, including over the same context.
type Session struct {
	p     *Pipeline
	store *sessioncache.Store // nil for store-less sessions

	ctxIDs  []int
	ctxHash string
	builder *kvcache.Builder // read-only after prefill

	// Single-slot seal memo: the last plan's pristine sealed cache.
	// Store-backed sessions additionally share seals via the store.
	lastPlanFP string
	lastSealed *kvcache.Cache

	prefillHit bool
	sealHit    bool
}

// Prefill runs the prefill stage over context (all words must come from
// Vocabulary()) and returns a Session that answers queries against it
// without re-running prefill. The Session retains the raw FP32 context KV
// (kvcache.Builder.SizeBytes bytes) for query-adaptive re-planning; use a
// SessionCache to share that state across sessions under a byte budget.
func (p *Pipeline) Prefill(context []string) (*Session, error) {
	return p.prefill(context, nil)
}

func (p *Pipeline) prefill(context []string, store *sessioncache.Store) (*Session, error) {
	ctxIDs, err := p.encode(context)
	if err != nil {
		return nil, err
	}
	if err := p.checkSeqBound(len(ctxIDs), 0); err != nil {
		return nil, err
	}
	s := &Session{p: p, store: store, ctxIDs: ctxIDs, ctxHash: hashTokens(ctxIDs)}
	if store != nil {
		if v, ok := store.Get(s.prefillKey()); ok {
			s.builder = v.(*kvcache.Builder)
			s.prefillHit = true
			return s, nil
		}
	}
	b, err := p.model.Prefill(ctxIDs)
	if err != nil {
		return nil, err
	}
	s.builder = b
	if store != nil {
		store.Put(s.prefillKey(), b)
	}
	return s, nil
}

func (s *Session) prefillKey() sessioncache.Key {
	return sessioncache.Key{
		Fingerprint: s.p.Fingerprint(), Kind: sessioncache.KindPrefill, Hash: s.ctxHash}
}

func (s *Session) sealedKey(planFP string) sessioncache.Key {
	return sessioncache.Key{
		Fingerprint: s.p.Fingerprint(), Kind: sessioncache.KindSealed,
		Hash: s.ctxHash + "/" + planFP}
}

// ContextTokens returns the number of prefilled context tokens.
func (s *Session) ContextTokens() int { return len(s.ctxIDs) }

// SizeBytes returns the resident footprint of the session's retained
// prefill KV in bytes (the FP32 builder — the dominant, fixed cost of
// keeping a session open; per-plan sealed caches are accounted by the
// shared store's own budget). Servers use this to byte-cap the total
// prefill state pinned by open sessions.
func (s *Session) SizeBytes() int64 { return s.builder.SizeBytes() }

// CachedPrefill reports whether this session's prefill state came from a
// SessionCache hit rather than a fresh prefill run.
func (s *Session) CachedPrefill() bool { return s.prefillHit }

// CachedSeal reports whether the most recent Answer call reused a sealed
// cache — from the session's own plan memo or the shared store — rather
// than re-quantizing from the retained FP32 KV. False before the first
// Answer. The workload harness uses this to measure sealed-kind cache
// pressure separately from prefill reuse.
func (s *Session) CachedSeal() bool { return s.sealHit }

// Answer answers one query against the session's prefilled context. The
// result is byte-identical to Pipeline.Answer(context, query): the
// quantization plan is recomputed for this query (Module I is
// query-adaptive), the sealed cache is reused when the plan is unchanged
// (and re-quantized from the retained FP32 KV when it is not), and
// decoding always runs on a private fork so the shared sealed cache stays
// pristine.
func (s *Session) Answer(query []string) (*Result, error) {
	t, err := s.StartAnswer(query)
	if err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// Append grows the session's context in place: the new words are
// delta-prefilled as a suffix onto the retained context KV, so only the
// appended tokens pay prefill cost instead of the whole concatenation.
// The resulting session state is byte-identical to a fresh session
// prefilled on the concatenation — prefill is an incremental per-token
// loop, so extending a builder replays exactly the operations a cold
// prefill of the full context would run (see model.PrefillExtend) — and
// subsequent Answer calls re-plan over the grown context via the usual
// Plan/Prepare split. The memoized seal is invalidated: a sealed cache
// covers a fixed token range, so no previous plan can be valid for the
// grown context.
//
// Store-backed sessions keep the shared store coherent the same way
// prefill does: the grown context's builder is looked up first (another
// session may have already paid for this exact concatenation) and
// inserted on miss, with the store's byte accounting updated to the grown
// size. The stored builder for the old context is never mutated — the
// session extends a copy-on-append Clone — so other sessions still
// holding the shorter context are unaffected.
//
// Appending zero words is a no-op. On error (unknown vocabulary, MaxSeq
// overflow) the session is left exactly as it was: still usable, context
// unchanged.
func (s *Session) Append(context []string) error {
	ids, err := s.p.encode(context)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	if err := s.p.checkSeqBound(len(s.ctxIDs)+len(ids), 0); err != nil {
		return err
	}
	newIDs := make([]int, 0, len(s.ctxIDs)+len(ids))
	newIDs = append(append(newIDs, s.ctxIDs...), ids...)
	newHash := hashTokens(newIDs)

	// Mirror prefill()'s store protocol (Get, then Put on miss) so the
	// per-kind CacheStats of grow-by-append match a cold prefill of the
	// concatenation operation for operation.
	if s.store != nil {
		key := sessioncache.Key{
			Fingerprint: s.p.Fingerprint(), Kind: sessioncache.KindPrefill, Hash: newHash}
		if v, ok := s.store.Get(key); ok {
			s.adoptContext(newIDs, newHash, v.(*kvcache.Builder), true)
			return nil
		}
	}
	b := s.builder.Clone()
	if err := s.p.model.PrefillExtend(b, ids); err != nil {
		return err
	}
	s.adoptContext(newIDs, newHash, b, false)
	if s.store != nil {
		s.store.Put(s.prefillKey(), b)
	}
	return nil
}

// adoptContext commits a grown context to the session and drops the seal
// memo (sealed caches cover a fixed token range; none survive growth).
func (s *Session) adoptContext(ids []int, hash string, b *kvcache.Builder, fromCache bool) {
	s.ctxIDs, s.ctxHash, s.builder = ids, hash, b
	s.prefillHit = fromCache
	s.lastPlanFP, s.lastSealed, s.sealHit = "", nil, false
}

// sealedFor returns the pristine sealed cache for plan, from the
// session's memo, the shared store, or a fresh SealWith (in that order).
func (s *Session) sealedFor(plan *kvcache.Plan, opts kvcache.SealOptions) (*kvcache.Cache, error) {
	fp := planFingerprint(plan, opts)
	if s.lastSealed != nil && s.lastPlanFP == fp {
		s.sealHit = true
		return s.lastSealed, nil
	}
	if s.store != nil {
		if v, ok := s.store.Get(s.sealedKey(fp)); ok {
			c := v.(*kvcache.Cache)
			s.lastPlanFP, s.lastSealed = fp, c
			s.sealHit = true
			return c, nil
		}
	}
	c, err := s.builder.SealWith(plan, opts)
	if err != nil {
		return nil, err
	}
	s.lastPlanFP, s.lastSealed = fp, c
	s.sealHit = false
	if s.store != nil {
		s.store.Put(s.sealedKey(fp), c)
	}
	return c, nil
}

// CachePolicy selects the SessionCache admission policy. The zero value
// (CachePolicyLRU) preserves the historical admit-everything semantics.
type CachePolicy int

const (
	// CachePolicyLRU admits every insert; recency alone decides who
	// survives the byte budget. Sustained one-shot traffic can flush
	// warm entries.
	CachePolicyLRU CachePolicy = iota
	// CachePolicy2Q admits a context's state only on its second
	// sighting within the TTL window (first sightings land on a
	// bytes-free ghost list), so one-shot scan traffic cannot displace
	// reused sessions. The cost: a context pays the cold path twice
	// before it starts hitting.
	CachePolicy2Q
	// CachePolicyA1 is the full A1in/A1out 2Q design: first sightings
	// are admitted into a small probation byte segment (sized by
	// SessionCacheOptions.ProbationPct) so even one-shot contexts can
	// hit within a burst, re-references promote to the protected
	// segment, and probation evictions feed the ghost list.
	CachePolicyA1
	// CachePolicyAdaptive flips between admit-everything and
	// second-sighting admission at runtime by watching the workload
	// (one-shot eviction churn vs rejected keys coming back) over
	// tumbling windows of SessionCacheOptions.AdaptWindow admission
	// decisions — re-evaluated at window boundaries, at most one flip
	// per window — so no static policy choice is needed.
	CachePolicyAdaptive
)

// String returns the policy's flag spelling ("lru", "2q", "a1" or
// "adaptive").
func (p CachePolicy) String() string {
	switch p {
	case CachePolicy2Q:
		return "2q"
	case CachePolicyA1:
		return "a1"
	case CachePolicyAdaptive:
		return "adaptive"
	}
	return "lru"
}

// ParseCachePolicy maps the flag spellings "lru" (or ""), "2q", "a1"
// (A1in/A1out) and "adaptive" to a CachePolicy, erroring on anything
// else.
func ParseCachePolicy(s string) (CachePolicy, error) {
	switch s {
	case "", "lru":
		return CachePolicyLRU, nil
	case "2q":
		return CachePolicy2Q, nil
	case "a1":
		return CachePolicyA1, nil
	case "adaptive":
		return CachePolicyAdaptive, nil
	}
	return CachePolicyLRU, fmt.Errorf("cocktail: unknown cache policy %q (have lru, 2q, a1, adaptive)", s)
}

// DefaultProbationPct is the probation-segment share of the byte budget
// (percent) used by CachePolicyA1 when SessionCacheOptions.ProbationPct
// is outside (0, 100).
const DefaultProbationPct = 10.0

// DefaultCacheShards returns the lock-shard count serving layers use
// when SessionCacheOptions.Shards is unset: runtime.NumCPU() rounded up
// to a power of two. The library default stays 1 (the historical
// single-mutex store) so embedders opt into sharding explicitly.
func DefaultCacheShards() int { return sessioncache.DefaultShards() }

// SessionCacheOptions sizes a SessionCache.
type SessionCacheOptions struct {
	// MaxBytes is the LRU byte budget over all retained prefill builders
	// and sealed caches (<= 0 selects the 256 MiB default).
	MaxBytes int64
	// TTL is the idle lifetime of a cache entry (0 = no expiry). Under
	// the 2Q-family policies it also bounds the gap between the two
	// sightings that earn admission.
	TTL time.Duration
	// Policy is the admission policy (default CachePolicyLRU).
	Policy CachePolicy
	// GhostEntries bounds the 2Q-family ghost list — the number of
	// seen-once keys remembered while on probation (<= 0 selects the
	// 1024 default). Ignored under CachePolicyLRU.
	GhostEntries int
	// ProbationPct is CachePolicyA1's probation-segment share of
	// MaxBytes, in percent; it must lie in (0, 100) and is carved out of
	// the budget (values outside the range select DefaultProbationPct;
	// the effective carve-out is additionally capped at half the budget
	// so the protected segment always dominates). Ignored by the other
	// policies. With SealedPct set it sizes the prefill sub-budget's
	// probation carve-out.
	ProbationPct float64
	// AdaptWindow is CachePolicyAdaptive's evaluation window in
	// admission decisions (<= 0 selects the 64 default). Ignored by the
	// static policies. With SealedPct set, each kind runs its own
	// window of this size.
	AdaptWindow int
	// SealedPct splits the byte budget per artifact kind: the given
	// percent of MaxBytes is dedicated to sealed caches and the
	// remainder to prefill builders, each kind with its own LRU
	// sub-budget, its own probation carve-out and — under the 2Q-family
	// policies — its own admission state (ghost list; for adaptive, its
	// own decision window and mode). Sealed entries are typically
	// several times smaller than prefill builders; the split stops a
	// handful of builders from monopolizing the bytes (and probation
	// trial space) that dozens of cheap seal trials could use, and
	// keeps seal churn from flipping the builders' adaptive mode. Must
	// lie in (0, 100); values outside keep the shared budget (the
	// historical behavior).
	SealedPct float64
	// SealedProbationPct is the sealed sub-budget's probation share in
	// percent under CachePolicyA1 (must lie in (0, 100); values outside
	// inherit ProbationPct's resolved value). Ignored unless SealedPct
	// is set.
	SealedProbationPct float64
	// Shards is the store's lock-shard count: the cache is split N ways
	// by key hash (N rounded up to a power of two), each lock-shard with
	// its own mutex, LRU state and admission-policy instance, so
	// concurrent requests on different keys never contend. Byte budgets
	// (total and per-kind) split deterministically across lock-shards
	// with the remainder on shard 0. <= 1 keeps the historical
	// single-mutex store; servers default to
	// sessioncache.DefaultShards() (NumCPU rounded to a power of two).
	Shards int
	// PersistDir enables the sealed-cache spill tier: admitted sealed
	// caches are also written to this directory (versioned, checksummed
	// artifacts), reloaded on startup for warm restarts, and consulted
	// on cache misses as a capacity tier beyond RAM. Corrupt or stale
	// artifacts are deleted and served as misses, never errors. Empty
	// disables persistence. Prefill builders are never persisted (raw
	// FP32 KV is far larger on disk than re-running prefill is slow).
	PersistDir string
	// Now overrides the wall clock for TTL/expiry decisions (nil =
	// time.Now). Tests inject a fake clock to drive expiry without real
	// sleeps; servers thread their own injected clock through here so
	// registry TTLs and cache TTLs tick together.
	Now func() time.Time
	// AutoTune enables the store's self-tuning layer: at tumbling-window
	// boundaries (AutoTuneWindow store operations) the cache nudges its
	// effective TTL, the sealed/prefill byte split and the per-kind
	// probation shares toward whichever configuration the measured
	// hit-rate-per-byte favors, with two-window hysteresis and hard
	// clamps around the configured baselines. Off (the default) keeps
	// every knob pinned at its configured value — decision-identical to
	// the untuned store.
	AutoTune bool
	// AutoTuneWindow is the tuner's window length in store operations
	// (<= 0 selects sessioncache.DefaultTuneWindow). Ignored unless
	// AutoTune is set.
	AutoTuneWindow int
}

// AdmissionStats reports a SessionCache's admission-policy counters and
// segment occupancy (mirrors sessioncache.AdmissionStats). Counter
// fields are monotonic totals; under CachePolicyLRU everything but
// Policy and the protected occupancy is zero.
type AdmissionStats struct {
	// Policy is the active policy label ("lru", "2q", "a1", "adaptive").
	Policy string `json:"policy"`
	// Mode is the adaptive controller's current mode ("permissive" or
	// "conservative"); empty for static policies.
	Mode string `json:"mode,omitempty"`
	// ProbationHits counts re-references that found the key on probation:
	// ghosted-key misses (2q/adaptive) or hits served from the probation
	// byte segment (a1).
	ProbationHits int64 `json:"probation_hits"`
	// GhostPromotions counts admissions earned by a remembered sighting.
	GhostPromotions int64 `json:"ghost_promotions"`
	// SegmentPromotions counts probation residents promoted to the
	// protected segment on re-reference (a1 only).
	SegmentPromotions int64 `json:"segment_promotions"`
	// ScanRejections counts sightings judged scan-like: declined inserts
	// plus probation entries evicted without re-reference.
	ScanRejections int64 `json:"scan_rejections"`
	// PolicyFlips counts adaptive mode changes.
	PolicyFlips int64 `json:"policy_flips"`
	// GhostEntries/GhostLimit are the ghost list's population and cap.
	GhostEntries int `json:"ghost_entries"`
	GhostLimit   int `json:"ghost_limit"`
	// Segment occupancy: current entry counts and byte totals per
	// segment, plus the probation segment's byte cap (summed over the
	// per-kind sub-budgets when SealedPct splits them).
	ProbationEntries  int   `json:"probation_entries"`
	ProbationBytes    int64 `json:"probation_bytes"`
	ProbationCapBytes int64 `json:"probation_cap_bytes"`
	ProtectedEntries  int   `json:"protected_entries"`
	ProtectedBytes    int64 `json:"protected_bytes"`
}

// KindStats reports one artifact kind's occupancy, byte cap and — when
// SealedPct gives kinds their own admission state — admission counters
// (mirrors sessioncache.KindStats).
type KindStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the byte cap governing the kind: its dedicated
	// sub-budget under SealedPct, or the shared budget otherwise.
	MaxBytes int64 `json:"max_bytes"`
	// Dedicated reports whether the kind has its own sub-budget.
	Dedicated bool `json:"dedicated"`
	// Probation occupancy of the kind's entries and its sub-budget's
	// probation cap.
	ProbationEntries  int   `json:"probation_entries"`
	ProbationBytes    int64 `json:"probation_bytes"`
	ProbationCapBytes int64 `json:"probation_cap_bytes"`
	// Admission is the kind's own admission counter block when the
	// policy keeps per-kind state; nil otherwise.
	Admission *AdmissionStats `json:"admission,omitempty"`
}

// CacheStats reports a SessionCache's counters and occupancy (mirrors
// sessioncache.Stats; counter fields are monotonic totals, Bytes/MaxBytes
// are bytes).
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	// Admission is the admission policy's counter block.
	Admission AdmissionStats `json:"admission"`
	// Kinds breaks occupancy (and, with SealedPct, budgets and
	// admission) down per artifact kind ("prefill", "sealed").
	Kinds map[string]KindStats `json:"kinds"`
	// Shards breaks occupancy and counters down per lock-shard (always
	// at least one entry; see SessionCacheOptions.Shards).
	Shards []ShardStats `json:"shards"`
	// Persist is the spill tier's counter block; nil unless
	// SessionCacheOptions.PersistDir enabled persistence.
	Persist *PersistStats `json:"persist,omitempty"`
	// Tune is the self-tuner's knob snapshot; nil unless
	// SessionCacheOptions.AutoTune enabled tuning, so an untuned cache's
	// stats payload is byte-for-byte the historical one.
	Tune *TuneStats `json:"tune,omitempty"`
}

// TuneStats reports the self-tuner's current knob values and applied
// nudge counts (mirrors sessioncache.TuneStats; nil when tuning is off).
type TuneStats struct {
	// Window is the tuning window length in store operations.
	Window int `json:"window"`
	// TTLMs is the current effective TTL in milliseconds (0 = no expiry).
	TTLMs float64 `json:"ttl_ms"`
	// SealedMaxBytes / PrefillMaxBytes are the current per-kind byte
	// sub-budgets; zero when SealedPct left the budget unsplit.
	SealedMaxBytes  int64 `json:"sealed_max_bytes"`
	PrefillMaxBytes int64 `json:"prefill_max_bytes"`
	// ProbationPct is the current probation share per dedicated kind.
	ProbationPct map[string]float64 `json:"probation_pct,omitempty"`
	// Nudge counters: applied moves per knob (clamped-to-no-op
	// evaluations do not count).
	TTLNudges       int64 `json:"ttl_nudges"`
	SplitNudges     int64 `json:"split_nudges"`
	ProbationNudges int64 `json:"probation_nudges"`
}

// ShardStats reports one lock-shard's occupancy and counters (mirrors
// sessioncache.ShardStats): its slice of the byte budget, and how much
// of the traffic its key range absorbed — hash skew and contention hot
// spots show up here.
type ShardStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
}

// PersistStats reports the sealed-cache spill tier's counters (mirrors
// sessioncache.PersistStats; all counters monotonic). Corrupt counts
// artifacts deleted as unreadable — each was served as a plain miss,
// never an error.
type PersistStats struct {
	Dir       string `json:"dir"`
	Writes    int64  `json:"writes"`
	Restores  int64  `json:"restores"`
	Preloaded int64  `json:"preloaded"`
	Corrupt   int64  `json:"corrupt"`
	Expired   int64  `json:"expired"`
	Errors    int64  `json:"errors"`
}

// SessionCache shares prefilled context KV and pristine sealed caches
// across requests, keyed by (pipeline fingerprint, context hash) with
// byte-accounted LRU eviction, TTL expiry and a pluggable admission
// policy (SessionCacheOptions.Policy; CachePolicy2Q makes the cache
// scan-resistant). It is safe for concurrent use; the sessions it vends
// follow the single-owner Session contract.
//
// Two racing misses on the same context may both run prefill and the last
// Put wins — wasted work, never wrong results, and the benign race keeps
// the hot path lock-free outside the store's own mutex.
type SessionCache struct {
	p     *Pipeline
	store *sessioncache.Store
}

// NewSessionCache builds a shared cache over p.
func NewSessionCache(p *Pipeline, opts SessionCacheOptions) *SessionCache {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = sessioncache.DefaultMaxBytes
	}
	probPct := opts.ProbationPct
	if probPct <= 0 || probPct >= 100 {
		probPct = DefaultProbationPct
	}
	// Per-kind split: dedicate SealedPct of the budget to sealed caches,
	// the rest to prefill builders, each with its own probation share.
	perKind := opts.SealedPct > 0 && opts.SealedPct < 100
	var kinds map[sessioncache.Kind]sessioncache.KindBudget
	if perKind {
		sealedProbPct := opts.SealedProbationPct
		if sealedProbPct <= 0 || sealedProbPct >= 100 {
			sealedProbPct = probPct
		}
		sealedMax := int64(float64(maxBytes) * opts.SealedPct / 100)
		kinds = map[sessioncache.Kind]sessioncache.KindBudget{
			sessioncache.KindSealed:  {MaxBytes: sealedMax, ProbationPct: sealedProbPct},
			sessioncache.KindPrefill: {MaxBytes: maxBytes - sealedMax, ProbationPct: probPct},
		}
	}
	// makePolicy builds one admission policy instance; with the per-kind
	// split every kind gets its own instance (own ghost list, own
	// adaptive window) via a PolicyPerKind router.
	makePolicy := func(sessioncache.Kind) sessioncache.Policy {
		switch opts.Policy {
		case CachePolicy2Q:
			return sessioncache.NewPolicy2Q(opts.GhostEntries, opts.TTL)
		case CachePolicyA1:
			// The store's KindBudget.ProbationPct (or, unsplit, this
			// same figure) overrides the carve-out per shard at attach;
			// the constructor value only matters for a policy driven
			// without a store.
			return sessioncache.NewPolicyA1(opts.GhostEntries, opts.TTL,
				int64(float64(maxBytes)*probPct/100))
		case CachePolicyAdaptive:
			return sessioncache.NewPolicyAdaptive(opts.GhostEntries, opts.TTL, opts.AdaptWindow)
		}
		return sessioncache.NewPolicyLRU()
	}
	// newPolicy builds one complete policy instance per store lock-shard
	// (each shard must own its admission state — ghost lists and
	// adaptive windows cannot be shared across mutexes). A nil return
	// selects the store's LRU default.
	newPolicy := func() sessioncache.Policy {
		switch {
		case perKind && opts.Policy != CachePolicyLRU:
			// PolicyLRU is stateless, so routing it per kind buys
			// nothing; the byte split alone (Options.Kinds) isolates the
			// kinds.
			return sessioncache.NewPolicyPerKind(
				[]sessioncache.Kind{sessioncache.KindPrefill, sessioncache.KindSealed}, makePolicy)
		case opts.Policy != CachePolicyLRU:
			return makePolicy("")
		}
		return nil
	}
	var persist *sessioncache.PersistOptions
	if opts.PersistDir != "" {
		persist = &sessioncache.PersistOptions{
			Dir: opts.PersistDir,
			Codecs: map[sessioncache.Kind]sessioncache.Codec{
				sessioncache.KindSealed: sealedCodec{}},
		}
	}
	var tune *sessioncache.TuneOptions
	if opts.AutoTune {
		tune = &sessioncache.TuneOptions{Window: opts.AutoTuneWindow}
	}
	return &SessionCache{
		p: p,
		store: sessioncache.New(sessioncache.Options{
			MaxBytes: opts.MaxBytes, TTL: opts.TTL, NewPolicy: newPolicy,
			Kinds: kinds, Shards: opts.Shards, Persist: persist, Now: opts.Now,
			Tune: tune}),
	}
}

// sealedCodec serializes sealed kvcache.Caches for the spill tier via
// the kvcache binary codec; a round trip is bit-exact (same SizeBytes,
// same Attend results), preserving the byte-identical-answers guarantee
// across a warm restart.
type sealedCodec struct{}

// Encode implements sessioncache.Codec.
func (sealedCodec) Encode(v sessioncache.Sized) ([]byte, error) {
	c, ok := v.(*kvcache.Cache)
	if !ok {
		return nil, fmt.Errorf("cocktail: sealed codec got %T, want *kvcache.Cache", v)
	}
	return c.MarshalBinary()
}

// Decode implements sessioncache.Codec.
func (sealedCodec) Decode(data []byte) (sessioncache.Sized, error) {
	return kvcache.UnmarshalCache(data)
}

// Pipeline returns the pipeline the cache serves.
func (c *SessionCache) Pipeline() *Pipeline { return c.p }

// Prefill returns a Session backed by this cache: its prefill state is
// fetched from (or inserted into) the shared store, and the sealed caches
// it produces are shared with every other session over the same context.
func (c *SessionCache) Prefill(context []string) (*Session, error) {
	return c.p.prefill(context, c.store)
}

// Answer is the transparent prefix-cache path: identical signature and
// byte-identical output to Pipeline.Answer, but a repeated context skips
// prefill (and, for a repeated plan, quantization too).
func (c *SessionCache) Answer(context, query []string) (*Result, error) {
	s, err := c.Prefill(context)
	if err != nil {
		return nil, err
	}
	return s.Answer(query)
}

// Cached reports whether a prefill for context is resident in the cache
// right now. It is a pure peek: no recency bump, no TTL refresh, and no
// admission-policy callbacks fire, so probing cannot perturb what the
// policies admit or evict. Schedulers use it to classify queued requests
// as warm (prefill already paid) versus cold before dispatching them; the
// answer is advisory — the entry can expire or be evicted between the
// probe and the dispatch, which costs a re-prefill, never a wrong result.
func (c *SessionCache) Cached(context []string) bool {
	ids, err := c.p.encode(context)
	if err != nil {
		return false
	}
	return c.store.Contains(sessioncache.Key{
		Fingerprint: c.p.Fingerprint(), Kind: sessioncache.KindPrefill, Hash: hashTokens(ids)})
}

// Stats snapshots the cache counters.
func (c *SessionCache) Stats() CacheStats {
	st := c.store.Stats()
	out := CacheStats{
		Hits:        st.Hits,
		Misses:      st.Misses,
		Evictions:   st.Evictions,
		Expirations: st.Expirations,
		Insertions:  st.Insertions,
		Entries:     st.Entries,
		Bytes:       st.Bytes,
		MaxBytes:    st.MaxBytes,
		Admission:   admissionStats(st.Admission),
		Kinds:       make(map[string]KindStats, len(st.Kinds)),
	}
	for kind, ks := range st.Kinds {
		mk := KindStats{
			Entries:           ks.Entries,
			Bytes:             ks.Bytes,
			MaxBytes:          ks.MaxBytes,
			Dedicated:         ks.Dedicated,
			ProbationEntries:  ks.ProbationEntries,
			ProbationBytes:    ks.ProbationBytes,
			ProbationCapBytes: ks.ProbationCapBytes,
		}
		if ks.Admission != nil {
			adm := admissionStats(*ks.Admission)
			mk.Admission = &adm
		}
		out.Kinds[kind] = mk
	}
	for _, sh := range st.Shards {
		out.Shards = append(out.Shards, ShardStats{
			Entries:     sh.Entries,
			Bytes:       sh.Bytes,
			MaxBytes:    sh.MaxBytes,
			Hits:        sh.Hits,
			Misses:      sh.Misses,
			Evictions:   sh.Evictions,
			Expirations: sh.Expirations,
			Insertions:  sh.Insertions,
		})
	}
	if st.Persist != nil {
		out.Persist = &PersistStats{
			Dir:       st.Persist.Dir,
			Writes:    st.Persist.Writes,
			Restores:  st.Persist.Restores,
			Preloaded: st.Persist.Preloaded,
			Corrupt:   st.Persist.Corrupt,
			Expired:   st.Persist.Expired,
			Errors:    st.Persist.Errors,
		}
	}
	if st.Tune != nil {
		pct := make(map[string]float64, len(st.Tune.ProbationPct))
		for k, v := range st.Tune.ProbationPct {
			pct[k] = v
		}
		if len(pct) == 0 {
			pct = nil
		}
		out.Tune = &TuneStats{
			Window:          st.Tune.Window,
			TTLMs:           st.Tune.TTLMs,
			SealedMaxBytes:  st.Tune.SealedMaxBytes,
			PrefillMaxBytes: st.Tune.PrefillMaxBytes,
			ProbationPct:    pct,
			TTLNudges:       st.Tune.TTLNudges,
			SplitNudges:     st.Tune.SplitNudges,
			ProbationNudges: st.Tune.ProbationNudges,
		}
	}
	return out
}

// admissionStats mirrors the store's admission block into the public
// type (field-by-field: the types differ only in the store-internal
// per-kind transport map, which Store.Stats has already redistributed).
func admissionStats(a sessioncache.AdmissionStats) AdmissionStats {
	return AdmissionStats{
		Policy:            a.Policy,
		Mode:              a.Mode,
		ProbationHits:     a.ProbationHits,
		GhostPromotions:   a.GhostPromotions,
		SegmentPromotions: a.SegmentPromotions,
		ScanRejections:    a.ScanRejections,
		PolicyFlips:       a.PolicyFlips,
		GhostEntries:      a.GhostEntries,
		GhostLimit:        a.GhostLimit,
		ProbationEntries:  a.ProbationEntries,
		ProbationBytes:    a.ProbationBytes,
		ProbationCapBytes: a.ProbationCapBytes,
		ProtectedEntries:  a.ProtectedEntries,
		ProtectedBytes:    a.ProtectedBytes,
	}
}

// Sweep drops every TTL-expired entry now and reports how many were
// expired (Get/Put expire lazily; servers call this periodically).
func (c *SessionCache) Sweep() int { return c.store.Sweep() }
