package cocktail

import (
	"reflect"
	"testing"
	"time"
)

// TestInterleavedTurnsMatchAnswer is the contract the batcher builds on:
// stepping several Turns round-robin — cold and session-backed mixed in
// one schedule — must yield exactly what the corresponding Answer calls
// yield, because a Turn shares nothing mutable with its siblings.
func TestInterleavedTurnsMatchAnswer(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.NewSample("Qasper", 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.NewSample("TREC", 9)
	if err != nil {
		t.Fatal(err)
	}

	want := make([]*Result, 3)
	for i, pair := range [][2][]string{
		{s1.Context, s1.Query}, {s2.Context, s2.Query}, {s1.Context, s2.Query},
	} {
		if want[i], err = p.Answer(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}

	sess, err := p.Prefill(s1.Context)
	if err != nil {
		t.Fatal(err)
	}
	turns := make([]*Turn, 3)
	if turns[0], err = p.StartAnswer(s1.Context, s1.Query); err != nil {
		t.Fatal(err)
	}
	if turns[1], err = p.StartAnswer(s2.Context, s2.Query); err != nil {
		t.Fatal(err)
	}
	if turns[2], err = sess.StartAnswer(s2.Query); err != nil {
		t.Fatal(err)
	}

	// Round-robin decode with staggered completion, the batcher's inner
	// loop in miniature.
	for running := 3; running > 0; {
		running = 0
		for _, tn := range turns {
			if tn.Step() {
				running++
			}
		}
	}
	for i, tn := range turns {
		if !tn.Finished() {
			t.Fatalf("turn %d not finished after drain", i)
		}
		if got := tn.Result(); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("turn %d diverged from Answer\n got: %+v\nwant: %+v", i, got, want[i])
		}
	}
}

// TestTurnStepBudget: a drained turn keeps returning false from Step and
// the same Result; the output never exceeds the decode budget.
func TestTurnStepBudget(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 5)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := p.StartAnswer(s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for tn.Step() {
		steps++
	}
	if steps > maxNewTokens {
		t.Fatalf("turn took %d steps, budget is %d", steps, maxNewTokens)
	}
	res := tn.Result()
	if len(res.Answer) > maxNewTokens {
		t.Fatalf("answer %d tokens exceeds budget %d", len(res.Answer), maxNewTokens)
	}
	if tn.Step() {
		t.Fatal("Step returned true after completion")
	}
	if tn.Result() != res {
		t.Fatal("Result changed after completion")
	}
}

// TestSessionCacheCachedPeek: the warm probe reports residency without
// perturbing cache state — no hit/miss counters move and no TTL refresh
// happens, so a probed entry still expires on schedule.
func TestSessionCacheCachedPeek(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSample("Qasper", 21)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	sc := NewSessionCache(p, SessionCacheOptions{
		MaxBytes: 64 << 20, TTL: time.Minute, Now: clock})

	if sc.Cached(s.Context) {
		t.Fatal("Cached true before any prefill")
	}
	if _, err := sc.Answer(s.Context, s.Query); err != nil {
		t.Fatal(err)
	}
	before := sc.Stats()
	for i := 0; i < 3; i++ {
		if !sc.Cached(s.Context) {
			t.Fatal("Cached false for a resident context")
		}
	}
	after := sc.Stats()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Fatalf("peek moved counters: before %+v after %+v", before, after)
	}
	// Probing must not have refreshed the TTL: the entry still expires at
	// its original deadline.
	now = now.Add(2 * time.Minute)
	if sc.Cached(s.Context) {
		t.Fatal("Cached true after TTL expiry")
	}
	// Unknown words are never cached (and never panic).
	if sc.Cached([]string{"definitely-not-in-the-synthetic-vocabulary"}) {
		t.Fatal("Cached true for an unencodable context")
	}
}
