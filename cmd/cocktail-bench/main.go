// Command cocktail-bench regenerates the paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	cocktail-bench -exp all
//	cocktail-bench -exp table2 -samples 50
//	cocktail-bench -exp fig6
//
// Experiments: table1 table2 table3 table4 table5 fig1 fig4 fig5 fig6 fig7
// (and "all"). See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1..table5, fig1, fig4..fig7, all)")
	samples := flag.Int("samples", 25, "samples per evaluation cell")
	ctx := flag.Int("context", 768, "context tokens per sample")
	seed := flag.Uint64("seed", 2025, "experiment seed")
	workers := flag.Int("workers", 0, "parallel sample evaluations (0 = NumCPU; output is identical at any setting)")
	flag.Parse()

	env, err := experiments.NewEnv(experiments.Config{
		Samples: *samples, ContextTokens: *ctx, MaxSeq: 2048, MaxNew: 24, Seed: *seed,
		Workers: *workers})
	if err != nil {
		fatal(err)
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("table1") {
		ran = true
		run("table1", func() error { fmt.Println(experiments.Table1().String()); return nil })
	}
	if want("fig1") {
		ran = true
		run("fig1", func() error { fmt.Println(experiments.Fig1(env).String()); return nil })
	}
	if want("table2") {
		ran = true
		run("table2", func() error {
			t, err := experiments.Table2(env)
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		})
	}
	if want("fig4") {
		ran = true
		run("fig4", func() error {
			t, err := experiments.Fig4(env)
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		})
	}
	if want("fig5") {
		ran = true
		run("fig5", func() error {
			t, err := experiments.Fig5(env)
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		})
	}
	if want("fig6") {
		ran = true
		run("fig6", func() error {
			f, err := experiments.Fig6(env)
			if err != nil {
				return err
			}
			fmt.Println(f.String())
			return nil
		})
	}
	if want("fig7") {
		ran = true
		run("fig7", func() error {
			fa, fb, err := experiments.Fig7(env)
			if err != nil {
				return err
			}
			fmt.Println(fa.String())
			fmt.Println(fb.String())
			return nil
		})
	}
	if want("table3") {
		ran = true
		run("table3", func() error {
			t, err := experiments.Table3(env)
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		})
	}
	if want("table4") {
		ran = true
		run("table4", func() error {
			t, err := experiments.Table4(env)
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		})
	}
	if want("table5") {
		ran = true
		run("table5", func() error {
			t, err := experiments.Table5(env)
			if err != nil {
				return err
			}
			fmt.Println(t.String())
			return nil
		})
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cocktail-bench:", err)
	os.Exit(1)
}
