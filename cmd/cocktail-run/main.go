// Command cocktail-run executes one end-to-end request through the public
// pipeline and prints the generated answer, the Module I plan and the
// cache footprint — a verbose single-sample view of what the benchmarks
// aggregate.
//
// Usage:
//
//	cocktail-run -dataset Qasper -method Cocktail -seed 7
//	cocktail-run -dataset QMSum -method Atom
//	cocktail-run -dataset LCC -alpha 0.8 -beta 0.05 -show-search
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cocktail "repro"
)

func main() {
	dataset := flag.String("dataset", "Qasper", "dataset name (see Table I)")
	method := flag.String("method", "Cocktail", "quantization method")
	modelName := flag.String("model", "Llama2-7B-sim", "simulated model")
	enc := flag.String("encoder", "contriever", "Module I encoder")
	alpha := flag.Float64("alpha", 0.6, "T_low hyperparameter")
	beta := flag.Float64("beta", 0.1, "T_high hyperparameter")
	chunk := flag.Int("chunk", 32, "chunk size in tokens")
	seed := flag.Uint64("seed", 7, "sample seed")
	showSearch := flag.Bool("show-search", false, "print per-chunk similarity scores")
	flag.Parse()

	p, err := cocktail.New(cocktail.Config{
		Model: *modelName, Method: *method, Encoder: *enc,
		Alpha: cocktail.Float(*alpha), Beta: cocktail.Float(*beta), ChunkSize: *chunk,
	})
	if err != nil {
		fatal(err)
	}
	s, err := p.NewSample(*dataset, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset   %s (seed %d), context %d words, query: %s\n",
		*dataset, *seed, len(s.Context), strings.Join(s.Query, " "))
	fmt.Printf("reference %s\n", strings.Join(s.Answer, " "))

	if *showSearch && *method == "Cocktail" {
		scores, tlow, thigh, precs, err := p.SearchOnly(s.Context, s.Query)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("search    T_low=%.3f T_high=%.3f\n", tlow, thigh)
		for i, sc := range scores {
			mark := ""
			for _, rc := range s.RelevantChunks {
				if rc == i {
					mark = "  <- relevant"
				}
			}
			fmt.Printf("  chunk %2d  score %6.3f  -> %s%s\n", i, sc, precs[i], mark)
		}
	}

	res, err := p.Answer(s.Context, s.Query)
	if err != nil {
		fatal(err)
	}
	score, err := p.Score(*dataset, res.Answer, s.Answer)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("answer    %s\n", strings.Join(res.Answer, " "))
	fmt.Printf("score     %.3f\n", score)
	fmt.Printf("plan      tokens by precision: %v, %d segments/head\n",
		res.Plan.TokensByPrecision, res.Plan.Segments)
	fmt.Printf("memory    context KV %d bytes vs FP16 %d bytes (%.2fx compression)\n",
		res.Plan.ContextKVBytes, res.Plan.FP16KVBytes, res.Plan.CompressionRatio())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cocktail-run:", err)
	os.Exit(1)
}
