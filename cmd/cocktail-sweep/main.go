// Command cocktail-sweep scans one Cocktail hyperparameter (alpha, beta or
// chunk size) over a dataset and prints accuracy plus the resulting
// precision mix — the tool behind Figure 7 and Table III style analyses.
//
// Usage:
//
//	cocktail-sweep -param alpha -dataset QMSum -samples 20
//	cocktail-sweep -param beta  -values 0.02,0.05,0.1,0.3
//	cocktail-sweep -param chunk -values 8,16,32,64,128,256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cocktail "repro"
)

func main() {
	param := flag.String("param", "alpha", "hyperparameter to sweep: alpha, beta or chunk")
	valuesFlag := flag.String("values", "", "comma-separated sweep values (defaults per param)")
	dataset := flag.String("dataset", "QMSum", "dataset name")
	modelName := flag.String("model", "Llama2-7B-sim", "simulated model")
	samples := flag.Int("samples", 20, "samples per sweep point")
	seed := flag.Uint64("seed", 1234, "base sample seed")
	flag.Parse()

	values := strings.Split(*valuesFlag, ",")
	if *valuesFlag == "" {
		switch *param {
		case "alpha":
			values = []string{"0.1", "0.3", "0.5", "0.6", "0.7", "0.9"}
		case "beta":
			values = []string{"0.02", "0.05", "0.1", "0.2", "0.3", "0.5"}
		case "chunk":
			values = []string{"8", "16", "32", "64", "128", "256"}
		default:
			fatal(fmt.Errorf("unknown param %q", *param))
		}
	}

	fmt.Printf("%-8s  %-8s  %s\n", *param, "score", "tokens by precision")
	for _, raw := range values {
		cfg := cocktail.Config{Model: *modelName}
		switch *param {
		case "alpha":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fatal(err)
			}
			cfg.Alpha = v
		case "beta":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fatal(err)
			}
			cfg.Beta = v
		case "chunk":
			v, err := strconv.Atoi(raw)
			if err != nil {
				fatal(err)
			}
			cfg.ChunkSize = v
		default:
			fatal(fmt.Errorf("unknown param %q", *param))
		}
		p, err := cocktail.New(cfg)
		if err != nil {
			fatal(err)
		}
		var total float64
		mix := map[string]int{}
		for i := 0; i < *samples; i++ {
			s, err := p.NewSample(*dataset, *seed+uint64(i))
			if err != nil {
				fatal(err)
			}
			res, err := p.Answer(s.Context, s.Query)
			if err != nil {
				fatal(err)
			}
			sc, err := p.Score(*dataset, res.Answer, s.Answer)
			if err != nil {
				fatal(err)
			}
			total += sc
			for k, v := range res.Plan.TokensByPrecision {
				mix[k] += v
			}
		}
		fmt.Printf("%-8s  %-8.3f  %v\n", raw, total/float64(*samples), mix)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cocktail-sweep:", err)
	os.Exit(1)
}
