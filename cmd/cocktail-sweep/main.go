// Command cocktail-sweep scans one Cocktail hyperparameter (alpha, beta or
// chunk size) over a dataset and prints accuracy plus the resulting
// precision mix — the tool behind Figure 7 and Table III style analyses.
//
// The pipeline is safe for concurrent use, so each sweep point's samples
// are evaluated in parallel across CPUs; results are reduced in sample
// order, keeping the printed table identical to a serial run.
//
// Usage:
//
//	cocktail-sweep -param alpha -dataset QMSum -samples 20
//	cocktail-sweep -param beta  -values 0.02,0.05,0.1,0.3
//	cocktail-sweep -param chunk -values 8,16,32,64,128,256 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cocktail "repro"
	"repro/internal/parallel"
)

func main() {
	param := flag.String("param", "alpha", "hyperparameter to sweep: alpha, beta or chunk")
	valuesFlag := flag.String("values", "", "comma-separated sweep values (defaults per param)")
	dataset := flag.String("dataset", "QMSum", "dataset name")
	modelName := flag.String("model", "Llama2-7B-sim", "simulated model")
	samples := flag.Int("samples", 20, "samples per sweep point")
	seed := flag.Uint64("seed", 1234, "base sample seed")
	workers := flag.Int("workers", 0, "parallel sample evaluations (0 = NumCPU)")
	flag.Parse()

	values := strings.Split(*valuesFlag, ",")
	if *valuesFlag == "" {
		switch *param {
		case "alpha":
			values = []string{"0.1", "0.3", "0.5", "0.6", "0.7", "0.9"}
		case "beta":
			values = []string{"0.02", "0.05", "0.1", "0.2", "0.3", "0.5"}
		case "chunk":
			values = []string{"8", "16", "32", "64", "128", "256"}
		default:
			fatal(fmt.Errorf("unknown param %q", *param))
		}
	}
	// Samples are generated once per seed at the paper-default granularity
	// while only the pipeline under test varies (as in Table III): a small
	// search chunk size must not constrain needle placement.
	genP, err := cocktail.New(cocktail.Config{Model: *modelName})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-8s  %-8s  %s\n", *param, "score", "tokens by precision")
	for _, raw := range values {
		cfg := cocktail.Config{Model: *modelName}
		switch *param {
		case "alpha":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fatal(err)
			}
			cfg.Alpha = cocktail.Float(v)
		case "beta":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fatal(err)
			}
			cfg.Beta = cocktail.Float(v)
		case "chunk":
			v, err := strconv.Atoi(raw)
			if err != nil {
				fatal(err)
			}
			cfg.ChunkSize = v
		default:
			fatal(fmt.Errorf("unknown param %q", *param))
		}
		p, err := cocktail.New(cfg)
		if err != nil {
			fatal(err)
		}
		scores := make([]float64, *samples)
		mixes := make([]map[string]int, *samples)
		err = parallel.ForEach(*workers, *samples, func(i int) error {
			return evalSample(genP, p, *dataset, *seed+uint64(i), &scores[i], &mixes[i])
		})
		if err != nil {
			fatal(err)
		}

		// Reduce in sample order so output matches a serial run exactly.
		var total float64
		mix := map[string]int{}
		for i := 0; i < *samples; i++ {
			total += scores[i]
			for k, v := range mixes[i] {
				mix[k] += v
			}
		}
		fmt.Printf("%-8s  %-8.3f  %v\n", raw, total/float64(*samples), mix)
	}
}

// evalSample runs one (sample, answer, score) round trip on the shared
// concurrency-safe pipelines: genP generates the sample, p answers it.
func evalSample(genP, p *cocktail.Pipeline, dataset string, seed uint64, score *float64, mix *map[string]int) error {
	s, err := genP.NewSample(dataset, seed)
	if err != nil {
		return err
	}
	res, err := p.Answer(s.Context, s.Query)
	if err != nil {
		return err
	}
	sc, err := p.Score(dataset, res.Answer, s.Answer)
	if err != nil {
		return err
	}
	*score = sc
	*mix = res.Plan.TokensByPrecision
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cocktail-sweep:", err)
	os.Exit(1)
}
