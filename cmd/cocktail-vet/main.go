// Command cocktail-vet runs the repo-contract analyzer suite
// (internal/analysis) over this module: determinism, clockinject,
// lockdiscipline and immutability — the prose invariants of DESIGN.md
// turned into build failures. CI runs it between `go vet` and the test
// step; it exits non-zero when any diagnostic survives the
// //cocktail:allow annotations.
//
// Usage:
//
//	cocktail-vet [-list] [packages]
//
// Packages follow the go tool's pattern shape ("./...", "./internal/x");
// with no argument the whole module is analyzed. -list prints the
// analyzer roster and exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	diags, err := vet(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cocktail-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// vet loads the selected packages and runs the full suite.
func vet(root string, patterns []string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(root, patterns)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, analysis.All()), nil
}
