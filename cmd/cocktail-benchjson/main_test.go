package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSessionAnswerWarm 	     100	  15294813 ns/op
PASS
ok  	repro	0.114s
pkg: repro/internal/workload
BenchmarkPrefixCacheUnderScan/lru-8         	       1	1116262616 ns/op	         9.302 ms/req	         0.3125 warm-hit-rate
BenchmarkMixedKindWorkload/split-45         	       1	2554378230 ns/op	        18.25 ms/req	         0.5054 sealed-warm-hit-rate	         0.7957 warm-hit-rate
PASS
ok  	repro/internal/workload	9.775s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("headers: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	warm := rep.Benchmarks[0]
	if warm.Package != "repro" || warm.Name != "BenchmarkSessionAnswerWarm" || warm.Iterations != 100 {
		t.Fatalf("warm: %+v", warm)
	}
	if warm.Metrics["ns/op"] != 15294813 {
		t.Fatalf("warm ns/op: %v", warm.Metrics)
	}

	scan := rep.Benchmarks[1]
	if scan.Package != "repro/internal/workload" {
		t.Fatalf("scan package: %q", scan.Package)
	}
	if scan.Name != "BenchmarkPrefixCacheUnderScan/lru-8" {
		t.Fatalf("name must be verbatim: %q", scan.Name)
	}
	if scan.Metrics["warm-hit-rate"] != 0.3125 || scan.Metrics["ms/req"] != 9.302 {
		t.Fatalf("scan metrics: %v", scan.Metrics)
	}

	mixed := rep.Benchmarks[2]
	if mixed.Name != "BenchmarkMixedKindWorkload/split-45" {
		t.Fatalf("numeric sub-benchmark suffix must survive: %q", mixed.Name)
	}
	if len(mixed.Metrics) != 4 {
		t.Fatalf("mixed metrics: %v", mixed.Metrics)
	}
}

// rpt builds a one-package report from (name, iterations, metrics)
// triples for the compare tests.
func rpt(benches ...Bench) *Report {
	r := &Report{}
	for _, b := range benches {
		b.Package = "repro/x"
		r.Benchmarks = append(r.Benchmarks, b)
	}
	return r
}

func bench(name string, iters int64, metrics map[string]float64) Bench {
	return Bench{Name: name, Iterations: iters, Metrics: metrics}
}

func regressionsOf(t *testing.T, old, cur *Report, tol float64) []string {
	t.Helper()
	var out strings.Builder
	regs := compare(&out, old, cur, tol)
	t.Logf("compare output:\n%s", out.String())
	return regs
}

func TestCompareDirections(t *testing.T) {
	old := rpt(
		bench("BenchmarkA", 50, map[string]float64{"ns/op": 100, "req/s": 40, "warm-hit-rate": 0.8}),
	)
	// Within tolerance both ways: no regression.
	ok := rpt(
		bench("BenchmarkA", 50, map[string]float64{"ns/op": 110, "req/s": 36, "warm-hit-rate": 0.75}),
	)
	if regs := regressionsOf(t, old, ok, 20); len(regs) != 0 {
		t.Fatalf("within tolerance flagged: %v", regs)
	}
	// ns/op regresses upward, req/s and hit-rate regress downward.
	bad := rpt(
		bench("BenchmarkA", 50, map[string]float64{"ns/op": 130, "req/s": 25, "warm-hit-rate": 0.5}),
	)
	regs := regressionsOf(t, old, bad, 20)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (ns/op up, req/s down, hit-rate down), got %v", regs)
	}
	// Improvements in every direction never fail.
	good := rpt(
		bench("BenchmarkA", 50, map[string]float64{"ns/op": 10, "req/s": 400, "warm-hit-rate": 1.0}),
	)
	if regs := regressionsOf(t, old, good, 20); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareSkipsSmokeTimings(t *testing.T) {
	// Either side at 1 iteration: timing units are scheduler luck, but
	// the seeded hit-rate is deterministic and must still gate.
	old := rpt(bench("BenchmarkA", 1, map[string]float64{"ns/op": 100, "ms/req": 9, "warm-hit-rate": 0.75}))
	cur := rpt(bench("BenchmarkA-4", 1, map[string]float64{"ns/op": 900, "ms/req": 80, "warm-hit-rate": 0.75}))
	if regs := regressionsOf(t, old, cur, 20); len(regs) != 0 {
		t.Fatalf("smoke-run timings gated: %v", regs)
	}
	worse := rpt(bench("BenchmarkA-4", 1, map[string]float64{"ns/op": 100, "ms/req": 9, "warm-hit-rate": 0.25}))
	regs := regressionsOf(t, old, worse, 20)
	if len(regs) != 1 || !strings.Contains(regs[0], "warm-hit-rate") {
		t.Fatalf("deterministic hit-rate drop not gated: %v", regs)
	}
}

func TestCompareProcsSuffixMatching(t *testing.T) {
	// A GOMAXPROCS=1 baseline has no -N suffix; multi-proc CI runs do —
	// and vice versa. Numeric sub-benchmark names must not alias.
	old := rpt(
		bench("BenchmarkMixed/split-45", 10, map[string]float64{"warm-hit-rate": 0.8}),
		bench("BenchmarkWarm-1", 10, map[string]float64{"warm-hit-rate": 0.9}),
	)
	cur := rpt(
		bench("BenchmarkMixed/split-45-4", 10, map[string]float64{"warm-hit-rate": 0.8}),
		bench("BenchmarkWarm", 10, map[string]float64{"warm-hit-rate": 0.9}),
	)
	if regs := regressionsOf(t, old, cur, 20); len(regs) != 0 {
		t.Fatalf("suffix-insensitive match failed: %v", regs)
	}
	// A different numeric sub-benchmark is NOT its sibling's baseline:
	// split-46 finds no counterpart, and split-45 goes missing.
	renamed := rpt(bench("BenchmarkMixed/split-46", 10, map[string]float64{"warm-hit-rate": 0.1}))
	regs := regressionsOf(t, rpt(old.Benchmarks[0]), renamed, 20)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("want exactly the missing-benchmark regression, got %v", regs)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := rpt(
		bench("BenchmarkA", 10, map[string]float64{"ns/op": 100}),
		bench("BenchmarkGone", 10, map[string]float64{"ns/op": 100}),
	)
	cur := rpt(
		bench("BenchmarkA", 10, map[string]float64{"ns/op": 100}),
		bench("BenchmarkNew", 10, map[string]float64{"ns/op": 100}),
	)
	regs := regressionsOf(t, old, cur, 20)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkGone") {
		t.Fatalf("dropped benchmark must regress (and a new one must not): %v", regs)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOdd 1 2",             // odd value/unit split
		"BenchmarkNoIters x 1 ns/op",   // non-numeric iterations
		"BenchmarkBadValue 1 zz ns/op", // non-numeric metric
		"BenchmarkShort 1",             // no metrics at all
	} {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("parse(%q): want error", line)
		}
	}
}
