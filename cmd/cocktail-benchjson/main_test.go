package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSessionAnswerWarm 	     100	  15294813 ns/op
PASS
ok  	repro	0.114s
pkg: repro/internal/workload
BenchmarkPrefixCacheUnderScan/lru-8         	       1	1116262616 ns/op	         9.302 ms/req	         0.3125 warm-hit-rate
BenchmarkMixedKindWorkload/split-45         	       1	2554378230 ns/op	        18.25 ms/req	         0.5054 sealed-warm-hit-rate	         0.7957 warm-hit-rate
PASS
ok  	repro/internal/workload	9.775s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("headers: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	warm := rep.Benchmarks[0]
	if warm.Package != "repro" || warm.Name != "BenchmarkSessionAnswerWarm" || warm.Iterations != 100 {
		t.Fatalf("warm: %+v", warm)
	}
	if warm.Metrics["ns/op"] != 15294813 {
		t.Fatalf("warm ns/op: %v", warm.Metrics)
	}

	scan := rep.Benchmarks[1]
	if scan.Package != "repro/internal/workload" {
		t.Fatalf("scan package: %q", scan.Package)
	}
	if scan.Name != "BenchmarkPrefixCacheUnderScan/lru-8" {
		t.Fatalf("name must be verbatim: %q", scan.Name)
	}
	if scan.Metrics["warm-hit-rate"] != 0.3125 || scan.Metrics["ms/req"] != 9.302 {
		t.Fatalf("scan metrics: %v", scan.Metrics)
	}

	mixed := rep.Benchmarks[2]
	if mixed.Name != "BenchmarkMixedKindWorkload/split-45" {
		t.Fatalf("numeric sub-benchmark suffix must survive: %q", mixed.Name)
	}
	if len(mixed.Metrics) != 4 {
		t.Fatalf("mixed metrics: %v", mixed.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOdd 1 2",             // odd value/unit split
		"BenchmarkNoIters x 1 ns/op",   // non-numeric iterations
		"BenchmarkBadValue 1 zz ns/op", // non-numeric metric
		"BenchmarkShort 1",             // no metrics at all
	} {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("parse(%q): want error", line)
		}
	}
}
