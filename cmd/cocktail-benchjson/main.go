// Command cocktail-benchjson converts `go test -bench` text output into
// a stable JSON document, so benchmark runs can be committed (the
// BENCH_PR6.json snapshot at the repo root) and archived as CI
// artifacts without anyone parsing benchmark text downstream.
//
// Usage:
//
//	go test -bench ... | cocktail-benchjson [-o out.json]
//
// Every `value unit` pair on a benchmark line is kept, so custom
// testing.B.ReportMetric units (warm-hit-rate, ms/req) survive next to
// ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package"`
	// Name is the benchmark name verbatim, sub-benchmark path and any
	// -procs suffix included: a trailing -N is ambiguous against
	// sub-benchmark names that end in a number (split-45), so nothing
	// is stripped.
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair (ns/op plus
	// any ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
		os.Exit(1)
	}
}

// parse scans go test -bench output: header lines (goos/goarch/pkg/cpu)
// set context, Benchmark lines become entries, everything else (PASS,
// ok, test logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(pkg, line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine splits one result line:
//
//	BenchmarkName/sub-8   	 125	 9.302 ms/req	 0.75 warm-hit-rate
func parseBenchLine(pkg, line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	b := Bench{
		Package:    pkg,
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
