// Command cocktail-benchjson converts `go test -bench` text output into
// a stable JSON document, so benchmark runs can be committed (the
// BENCH_PR*.json snapshots at the repo root) and archived as CI
// artifacts without anyone parsing benchmark text downstream.
//
// Usage:
//
//	go test -bench ... | cocktail-benchjson [-o out.json]
//	cocktail-benchjson -compare [-tolerance 20] old.json new.json
//
// Every `value unit` pair on a benchmark line is kept, so custom
// testing.B.ReportMetric units (warm-hit-rate, ms/req) survive next to
// ns/op.
//
// Compare mode diffs two snapshots and exits 1 on regression — the CI
// gate against the previous PR's committed snapshot. Timing-sensitive
// units (ns/op, ms/req, req/s, …) are only compared when both runs did
// more than one iteration: a 1-iteration smoke run measures scheduler
// luck, not the code. Deterministic units (the *-rate hit-rate metrics)
// are always compared. A benchmark present in the old snapshot but
// missing from the new one fails the comparison — losing a benchmark is
// itself a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package"`
	// Name is the benchmark name verbatim, sub-benchmark path and any
	// -procs suffix included: a trailing -N is ambiguous against
	// sub-benchmark names that end in a number (split-45), so nothing
	// is stripped.
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair (ns/op plus
	// any ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compareMode := flag.Bool("compare", false, "compare two snapshots: cocktail-benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 20, "compare mode: allowed regression in percent before failing")
	flag.Parse()
	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "cocktail-benchjson: -compare needs exactly two snapshot paths")
			os.Exit(2)
		}
		old, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
			os.Exit(2)
		}
		cur, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
			os.Exit(2)
		}
		regressions := compare(os.Stdout, old, cur, *tolerance)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "cocktail-benchjson: %d regression(s) beyond %.0f%% vs %s:\n", len(regressions), *tolerance, flag.Arg(0))
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		return
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cocktail-benchjson:", err)
		os.Exit(1)
	}
}

// parse scans go test -bench output: header lines (goos/goarch/pkg/cpu)
// set context, Benchmark lines become entries, everything else (PASS,
// ok, test logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(pkg, line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine splits one result line:
//
//	BenchmarkName/sub-8   	 125	 9.302 ms/req	 0.75 warm-hit-rate
func parseBenchLine(pkg, line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	b := Bench{
		Package:    pkg,
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// loadReport reads a snapshot written by this tool.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// procsSuffix matches the -N GOMAXPROCS suffix go test appends to
// benchmark names on multi-proc runs (and omits at GOMAXPROCS=1).
var procsSuffix = regexp.MustCompile(`-\d+$`)

// matchBench finds old's counterpart for a new benchmark. Names match
// exactly, or with exactly one side's procs suffix stripped — so a
// snapshot taken at GOMAXPROCS=1 (no suffix) compares against a
// multi-proc run of the same benchmark. Both-sides stripping is
// deliberately not attempted: it would alias sub-benchmarks whose names
// end in a number (split-45 vs split-46).
func matchBench(oldByKey map[string]Bench, b Bench) (Bench, bool) {
	if o, ok := oldByKey[b.Package+"\x00"+b.Name]; ok {
		return o, true
	}
	if s := procsSuffix.ReplaceAllString(b.Name, ""); s != b.Name {
		if o, ok := oldByKey[b.Package+"\x00"+s]; ok {
			return o, true
		}
	}
	if o, ok := oldByKey[b.Package+"\x00"+b.Name+"-1"]; ok {
		return o, true
	}
	return Bench{}, false
}

// deterministicUnit reports whether a metric is run-to-run stable (the
// seeded hit-rate metrics) rather than timing-derived. Deterministic
// units are compared even between 1-iteration smoke runs.
func deterministicUnit(unit string) bool {
	return strings.HasSuffix(unit, "-rate")
}

// higherBetter reports the improvement direction for a unit: rates and
// per-second figures regress downward, latencies and allocation counts
// regress upward.
func higherBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "-rate")
}

// compare diffs two snapshots, prints one line per compared (or skipped)
// metric to w, and returns the descriptions of every regression beyond
// tolerance percent. A benchmark in old with no counterpart in new is a
// regression; benchmarks new in new are reported but never failing.
func compare(w io.Writer, old, cur *Report, tolerance float64) []string {
	oldByKey := make(map[string]Bench, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldByKey[b.Package+"\x00"+b.Name] = b
	}
	var regressions []string
	matched := make(map[string]bool, len(old.Benchmarks))
	for _, b := range cur.Benchmarks {
		o, ok := matchBench(oldByKey, b)
		if !ok {
			fmt.Fprintf(w, "new       %s %s (no baseline)\n", b.Package, b.Name)
			continue
		}
		matched[o.Package+"\x00"+o.Name] = true
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			if _, ok := o.Metrics[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, nv := o.Metrics[unit], b.Metrics[unit]
			if !deterministicUnit(unit) && (o.Iterations == 1 || b.Iterations == 1) {
				fmt.Fprintf(w, "skipped   %s %s %s (1-iteration smoke run)\n", b.Package, b.Name, unit)
				continue
			}
			if ov == 0 {
				// No baseline magnitude to take a percentage of.
				fmt.Fprintf(w, "skipped   %s %s %s (zero baseline)\n", b.Package, b.Name, unit)
				continue
			}
			delta := (nv - ov) / ov * 100
			worse := delta > tolerance
			if higherBetter(unit) {
				worse = delta < -tolerance
			}
			verdict := "ok       "
			if worse {
				verdict = "REGRESSED"
				regressions = append(regressions,
					fmt.Sprintf("%s %s %s: %g -> %g (%+.1f%%)", b.Package, b.Name, unit, ov, nv, delta))
			}
			fmt.Fprintf(w, "%s %s %s %s: %g -> %g (%+.1f%%)\n", verdict, b.Package, b.Name, unit, ov, nv, delta)
		}
	}
	for _, o := range old.Benchmarks {
		if !matched[o.Package+"\x00"+o.Name] {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: present in baseline, missing from new run", o.Package, o.Name))
			fmt.Fprintf(w, "MISSING   %s %s\n", o.Package, o.Name)
		}
	}
	return regressions
}
