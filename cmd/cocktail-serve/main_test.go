package main

import (
	"errors"
	"flag"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	cocktail "repro"
)

// TestMain doubles as the subprocess entry point for the exit-code
// tests: when COCKTAIL_SERVE_ARGS is set, it runs the real main with
// those arguments instead of the test suite, so a test can observe the
// process exit status of a flag-validation failure.
func TestMain(m *testing.M) {
	if args := os.Getenv("COCKTAIL_SERVE_ARGS"); args != "" {
		os.Args = append([]string{"cocktail-serve"}, strings.Fields(args)...)
		main() // must log.Fatal (exit 1) on the invalid flags under test
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestInvalidFlagsExitNonZero: out-of-range flags must terminate the
// process with a non-zero exit code and a diagnostic — never be silently
// clamped into a running server.
func TestInvalidFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name, args, diag string
	}{
		{"negative-ghost-entries", "-ghost-entries -1", "-ghost-entries"},
		{"negative-probation-pct", "-probation-pct -5", "-probation-pct"},
		{"zero-probation-pct", "-probation-pct 0", "-probation-pct"},
		{"probation-pct-100", "-probation-pct 100", "-probation-pct"},
		{"probation-pct-over", "-probation-pct 250", "-probation-pct"},
		{"negative-adapt-window", "-adapt-window -3", "-adapt-window"},
		{"unknown-policy", "-cache-policy arc", "cache policy"},
		{"negative-sealed-cache-pct", "-sealed-cache-pct -1", "-sealed-cache-pct"},
		{"sealed-cache-pct-100", "-sealed-cache-pct 100", "-sealed-cache-pct"},
		{"sealed-probation-pct-over", "-sealed-cache-pct 40 -sealed-probation-pct 100", "-sealed-probation-pct"},
		{"sealed-probation-without-split", "-sealed-probation-pct 25", "-sealed-cache-pct"},
		{"negative-batch-max", "-batch-max -1", "-batch-max"},
		{"negative-batch-window", "-batch-window -2ms", "-batch-window"},
		{"oversize-batch-window", "-batch-window 2s", "-batch-window"},
		{"negative-cache-shards", "-cache-shards -1", "-cache-shards"},
		{"oversize-cache-shards", "-cache-shards 131072", "-cache-shards"},
		{"unknown-streaming-mode", "-streaming sse", "-streaming"},
		{"negative-cost-budget", "-cost-budget-ms -500", "-cost-budget-ms"},
		{"tenant-header-separator", "-tenant-header X:Tenant", "-tenant-header"},
		{"unknown-auto-tune-mode", "-auto-tune auto", "-auto-tune"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(os.Args[0], "-test.run=^$")
			cmd.Env = append(os.Environ(), "COCKTAIL_SERVE_ARGS="+tc.args)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want non-zero exit, got err=%v output=%q", err, out)
			}
			if code := ee.ExitCode(); code != 1 {
				t.Fatalf("exit code %d, want 1; output: %q", code, out)
			}
			if !strings.Contains(string(out), tc.diag) {
				t.Fatalf("diagnostic missing %q: %q", tc.diag, out)
			}
		})
	}
}

// TestHelpExitsZero: -h prints usage and exits 0 — it is a request, not
// a configuration error.
func TestHelpExitsZero(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), "COCKTAIL_SERVE_ARGS=-h")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-h must exit 0, got %v; output: %q", err, out)
	}
	if !strings.Contains(string(out), "-cache-policy") {
		t.Fatalf("usage text missing from -h output: %q", out)
	}
}

// TestParseArgsValid pins the happy path: every policy spelling parses,
// defaults survive, and the knobs reach httpapi.Options untouched.
func TestParseArgsValid(t *testing.T) {
	cfg, err := parseArgs(strings.Fields(
		"-addr :9090 -cache-policy adaptive -ghost-entries 512 -probation-pct 25 -adapt-window 32 -session-ttl 5m"),
		io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9090" || cfg.opts.CachePolicy != cocktail.CachePolicyAdaptive ||
		cfg.opts.GhostEntries != 512 || cfg.opts.ProbationPct != 25 ||
		cfg.opts.AdaptWindow != 32 || cfg.opts.SessionTTL != 5*time.Minute {
		t.Fatalf("parsed config: %+v", cfg)
	}
	cfg, err = parseArgs(strings.Fields(
		"-cache-policy a1 -sealed-cache-pct 45 -sealed-probation-pct 30"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.SealedCachePct != 45 || cfg.opts.SealedProbationPct != 30 {
		t.Fatalf("per-kind flags not threaded: %+v", cfg.opts)
	}
	// -sealed-probation-pct 0 (the default) inherits -probation-pct, so
	// a bare -sealed-cache-pct parses.
	if cfg, err = parseArgs(strings.Fields("-sealed-cache-pct 30"), io.Discard); err != nil ||
		cfg.opts.SealedCachePct != 30 || cfg.opts.SealedProbationPct != 0 {
		t.Fatalf("bare -sealed-cache-pct: cfg=%+v err=%v", cfg, err)
	}
	for _, spelling := range []string{"lru", "2q", "a1", "adaptive"} {
		if _, err := parseArgs([]string{"-cache-policy", spelling}, io.Discard); err != nil {
			t.Errorf("policy %q rejected: %v", spelling, err)
		}
	}
	// Batching knobs thread through untouched; 1 is the disable spelling
	// and the library default (0) needs no flags at all.
	cfg, err = parseArgs(strings.Fields("-batch-max 16 -batch-window 5ms"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.BatchMax != 16 || cfg.opts.BatchWindow != 5*time.Millisecond {
		t.Fatalf("batching flags not threaded: %+v", cfg.opts)
	}
	if cfg, err = parseArgs(strings.Fields("-batch-max 1"), io.Discard); err != nil || cfg.opts.BatchMax != 1 {
		t.Fatalf("-batch-max 1 (disable) rejected: cfg=%+v err=%v", cfg, err)
	}
	// Sharding and persistence thread through; 1 is the single-mutex
	// spelling and 0 (the default) defers to the NumCPU-derived count.
	cfg, err = parseArgs(strings.Fields("-cache-shards 8 -cache-persist-dir /tmp/spill"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.CacheShards != 8 || cfg.opts.CachePersistDir != "/tmp/spill" {
		t.Fatalf("sharding flags not threaded: %+v", cfg.opts)
	}
	if cfg, err = parseArgs(strings.Fields("-cache-shards 1"), io.Discard); err != nil || cfg.opts.CacheShards != 1 {
		t.Fatalf("-cache-shards 1 (single mutex) rejected: cfg=%+v err=%v", cfg, err)
	}
	// Streaming defaults on; -streaming off maps to DisableStreaming.
	if cfg, err = parseArgs(nil, io.Discard); err != nil || cfg.opts.DisableStreaming {
		t.Fatalf("streaming must default on: cfg=%+v err=%v", cfg, err)
	}
	if cfg, err = parseArgs(strings.Fields("-streaming off"), io.Discard); err != nil || !cfg.opts.DisableStreaming {
		t.Fatalf("-streaming off not threaded: cfg=%+v err=%v", cfg, err)
	}
	// Scheduling knobs thread through untouched; the defaults keep every
	// gate off (historical semantics).
	cfg, err = parseArgs(strings.Fields(
		"-cost-budget-ms 5000 -tenant-header X-Tenant -auto-tune on"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.CostBudgetMs != 5000 || cfg.opts.TenantHeader != "X-Tenant" || !cfg.opts.AutoTune {
		t.Fatalf("scheduling flags not threaded: %+v", cfg.opts)
	}
	if cfg, err = parseArgs(nil, io.Discard); err != nil ||
		cfg.opts.CostBudgetMs != 0 || cfg.opts.TenantHeader != "" || cfg.opts.AutoTune {
		t.Fatalf("scheduling gates must default off: cfg=%+v err=%v", cfg, err)
	}
	// Defaults: probation-pct starts inside its valid range, so a bare
	// invocation parses.
	cfg, err = parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.ProbationPct != cocktail.DefaultProbationPct || cfg.opts.CachePolicy != cocktail.CachePolicyLRU {
		t.Fatalf("default config: %+v", cfg.opts)
	}
}

// TestParseArgsInvalid mirrors the exit-code cases at the function level
// so the error text itself is covered.
func TestParseArgsInvalid(t *testing.T) {
	for _, args := range [][]string{
		{"-ghost-entries", "-1"},
		{"-probation-pct", "0"},
		{"-probation-pct", "100"},
		{"-probation-pct", "-2"},
		{"-adapt-window", "-1"},
		{"-cache-policy", "clock"},
		{"-sealed-cache-pct", "-3"},
		{"-sealed-cache-pct", "100"},
		{"-sealed-cache-pct", "40", "-sealed-probation-pct", "-1"},
		{"-sealed-probation-pct", "20"},
		{"-batch-max", "-2"},
		{"-batch-window", "-1ms"},
		{"-batch-window", "90s"},
		{"-cache-shards", "-1"},
		{"-cache-shards", "70000"},
		{"-streaming", "maybe"},
		{"-cost-budget-ms", "-1"},
		{"-tenant-header", "X Tenant"},
		{"-tenant-header", "X:Tenant"},
		{"-auto-tune", "1"},
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
	// -h is not a configuration error: it surfaces as flag.ErrHelp so
	// main can exit 0.
	if _, err := parseArgs([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
}
