// Command cocktail-serve exposes the pipeline over HTTP — the shape a
// deployment of this library would take. Requests run concurrently on a
// bounded worker pool (see internal/httpapi). Endpoints:
//
//	GET    /v1/info                  pipeline configuration and rosters
//	POST   /v1/answer                {"context": [...], "query": [...]}
//	POST   /v1/search                Module I only: plan + scores
//	GET    /v1/sample?dataset=X&seed=N  generate a benchmark sample
//	POST   /v1/session               {"context": [...]} -> prefill once, open a session
//	POST   /v1/session/{id}/answer   {"query": [...]} -> answer without re-prefilling
//	DELETE /v1/session/{id}          close a session
//	GET    /v1/metrics               per-endpoint counters, pool and cache state
//
// Repeated contexts hit the byte-budgeted session/prefix cache (sized by
// -session-cache-mb, idle entries dropped after -session-ttl), skipping
// prefill with byte-identical results. -cache-policy 2q makes the cache
// scan-resistant: a context is admitted only on its second sighting
// (probation keys bounded by -ghost-entries), so crawler-style one-shot
// traffic cannot flush warm sessions; see docs/API.md for the full
// reference.
//
// Usage:
//
//	cocktail-serve -addr :8080 -method Cocktail -workers 8 -queue 64 \
//	    -session-cache-mb 128 -session-ttl 10m -cache-policy 2q
//	curl -s localhost:8080/v1/sample?dataset=Qasper&seed=7
package main

import (
	"flag"
	"log"
	"net/http"

	cocktail "repro"
	"repro/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "Cocktail", "quantization method")
	modelName := flag.String("model", "Llama2-7B-sim", "simulated model")
	alpha := flag.Float64("alpha", 0.6, "T_low hyperparameter")
	beta := flag.Float64("beta", 0.1, "T_high hyperparameter")
	workers := flag.Int("workers", 0, "concurrent pipeline executions (0 = NumCPU)")
	queue := flag.Int("queue", 0, "waiting-request queue depth (0 = 4x workers)")
	cacheMB := flag.Int("session-cache-mb", 0, "session/prefix cache budget in MiB (0 = 64, negative disables)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle session and cache-entry lifetime (0 = 15m)")
	maxSessions := flag.Int("max-sessions", 0, "open-session cap, LRU-evicted beyond it (0 = 1024)")
	cachePolicy := flag.String("cache-policy", "lru", "prefix-cache admission policy: lru (admit everything) or 2q (scan-resistant second-sighting admission)")
	ghostEntries := flag.Int("ghost-entries", 0, "2q ghost-list capacity: seen-once keys remembered on probation (0 = 1024)")
	flag.Parse()

	policy, err := cocktail.ParseCachePolicy(*cachePolicy)
	if err != nil {
		log.Fatal(err)
	}
	p, err := cocktail.New(cocktail.Config{
		Model: *modelName, Method: *method,
		Alpha: cocktail.Float(*alpha), Beta: cocktail.Float(*beta)})
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(p, httpapi.Options{
		Workers: *workers, QueueDepth: *queue,
		SessionCacheMB: *cacheMB, SessionTTL: *sessionTTL,
		MaxSessions: *maxSessions,
		CachePolicy: policy, GhostEntries: *ghostEntries})
	log.Printf("cocktail-serve: %s / %s listening on %s", *modelName, *method, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
