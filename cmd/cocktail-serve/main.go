// Command cocktail-serve exposes the pipeline over HTTP — the shape a
// deployment of this library would take. Requests run concurrently on a
// bounded worker pool (see internal/httpapi). Endpoints:
//
//	GET  /v1/info                  pipeline configuration and rosters
//	POST /v1/answer                {"context": [...], "query": [...]}
//	POST /v1/search                Module I only: plan + scores
//	GET  /v1/sample?dataset=X&seed=N  generate a benchmark sample
//	GET  /v1/metrics               per-endpoint counters and pool state
//
// Usage:
//
//	cocktail-serve -addr :8080 -method Cocktail -workers 8 -queue 64
//	curl -s localhost:8080/v1/sample?dataset=Qasper&seed=7
package main

import (
	"flag"
	"log"
	"net/http"

	cocktail "repro"
	"repro/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "Cocktail", "quantization method")
	modelName := flag.String("model", "Llama2-7B-sim", "simulated model")
	alpha := flag.Float64("alpha", 0.6, "T_low hyperparameter")
	beta := flag.Float64("beta", 0.1, "T_high hyperparameter")
	workers := flag.Int("workers", 0, "concurrent pipeline executions (0 = NumCPU)")
	queue := flag.Int("queue", 0, "waiting-request queue depth (0 = 4x workers)")
	flag.Parse()

	p, err := cocktail.New(cocktail.Config{
		Model: *modelName, Method: *method,
		Alpha: cocktail.Float(*alpha), Beta: cocktail.Float(*beta)})
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(p, httpapi.Options{Workers: *workers, QueueDepth: *queue})
	log.Printf("cocktail-serve: %s / %s listening on %s", *modelName, *method, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
