// Command cocktail-serve exposes the pipeline over HTTP — the shape a
// deployment of this library would take. Requests run concurrently on a
// bounded worker pool (see internal/httpapi). Endpoints:
//
//	GET    /v1/info                  pipeline configuration and rosters
//	POST   /v1/answer                {"context": [...], "query": [...]}
//	POST   /v1/search                Module I only: plan + scores
//	GET    /v1/sample?dataset=X&seed=N  generate a benchmark sample
//	POST   /v1/session               {"context": [...]} -> prefill once, open a session
//	POST   /v1/session/{id}/answer   {"query": [...]} -> answer without re-prefilling
//	POST   /v1/session/{id}/append   {"context": [...]} -> grow the session's context in place
//	DELETE /v1/session/{id}          close a session
//	GET    /v1/metrics               per-endpoint counters, pool, cache and streaming state
//
// Both answer endpoints stream when asked: `?stream=1` (or Accept:
// text/event-stream) switches the response to Server-Sent Events —
// token events at decode-step boundaries, then a terminal result or
// error event. -streaming off disables SSE (such requests get the
// buffered JSON body instead).
//
// Repeated contexts hit the byte-budgeted session/prefix cache (sized by
// -session-cache-mb, idle entries dropped after -session-ttl), skipping
// prefill with byte-identical results. -cache-policy picks the admission
// policy: lru admits everything (default), 2q admits a context only on
// its second sighting (probation keys bounded by -ghost-entries), a1 is
// the full A1in/A1out design (first sightings trialled in a probation
// byte segment sized by -probation-pct), and adaptive flips between
// admit-everything and second-sighting admission automatically by
// watching the workload over -adapt-window admission decisions.
// -sealed-cache-pct splits the budget per artifact kind — that percent
// is dedicated to sealed caches (own LRU, probation pool sized by
// -sealed-probation-pct, admission state), the rest to prefill builders
// — so cheap seal trials stop competing with ~3× bigger builders.
// -cache-shards lock-shards the store by key hash (default NumCPU rounded
// up to a power of two) so concurrent requests on different contexts
// never contend on one mutex, and -cache-persist-dir spills sealed caches
// to versioned on-disk artifacts — reloaded on startup, so a restarted
// server starts warm instead of cold (corrupt artifacts degrade to
// misses, never errors); see docs/API.md for the full reference.
//
// The answer endpoints run under a continuous-batching scheduler:
// concurrent requests coalesce into batches of up to -batch-max
// interleaved decode turns (1 disables batching), each batch holding its
// first request up to -batch-window while arrivals accumulate; see the
// "batching" block of /v1/metrics for the resulting batch shapes.
//
// -cost-budget-ms arms cost-model admission: requests are priced by the
// calibrated hardware model and shed with 503 + Retry-After once the
// predicted work in flight would exceed the budget. -tenant-header
// turns the batcher queues into per-tenant deficit-round-robin over
// predicted cost, keyed by that header's value. -auto-tune on lets the
// session cache nudge its own TTL, sealed/prefill split and probation
// share from measured hit rates, within hard clamps; the "scheduling"
// and cache "tune" blocks of /v1/metrics expose the resulting state.
//
// Usage:
//
//	cocktail-serve -addr :8080 -method Cocktail -workers 8 -queue 64 \
//	    -session-cache-mb 128 -session-ttl 10m -cache-policy adaptive
//	curl -s localhost:8080/v1/sample?dataset=Qasper&seed=7
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	cocktail "repro"
	"repro/internal/httpapi"
)

// serveConfig is everything parseArgs extracts from the command line.
type serveConfig struct {
	addr     string
	pipeline cocktail.Config
	opts     httpapi.Options
}

// parseArgs parses and validates the command line. Range violations are
// rejected with an error (they exit the process non-zero from main)
// rather than silently clamped, so a typo in a deployment manifest is
// caught at rollout instead of quietly misconfiguring the cache.
func parseArgs(args []string, stderr io.Writer) (*serveConfig, error) {
	fs := flag.NewFlagSet("cocktail-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	method := fs.String("method", "Cocktail", "quantization method")
	modelName := fs.String("model", "Llama2-7B-sim", "simulated model")
	alpha := fs.Float64("alpha", 0.6, "T_low hyperparameter")
	beta := fs.Float64("beta", 0.1, "T_high hyperparameter")
	workers := fs.Int("workers", 0, "concurrent pipeline executions (0 = NumCPU)")
	queue := fs.Int("queue", 0, "waiting-request queue depth (0 = 4x workers)")
	cacheMB := fs.Int("session-cache-mb", 0, "session/prefix cache budget in MiB (0 = 64, negative disables)")
	sessionTTL := fs.Duration("session-ttl", 0, "idle session and cache-entry lifetime (0 = 15m)")
	maxSessions := fs.Int("max-sessions", 0, "open-session cap, LRU-evicted beyond it (0 = 1024)")
	cachePolicy := fs.String("cache-policy", "lru",
		"prefix-cache admission policy: lru (admit everything), 2q (scan-resistant second-sighting admission), a1 (full A1in/A1out with a probation byte segment) or adaptive (flips between lru and 2q by watching the workload)")
	ghostEntries := fs.Int("ghost-entries", 0, "2q/a1/adaptive ghost-list capacity: seen-once keys remembered on probation (0 = 1024)")
	probationPct := fs.Float64("probation-pct", cocktail.DefaultProbationPct,
		"a1 probation segment share of the cache budget, percent in (0, 100)")
	adaptWindow := fs.Int("adapt-window", 0, "adaptive evaluation window in admission decisions (0 = 64)")
	sealedCachePct := fs.Float64("sealed-cache-pct", 0,
		"dedicate this percent of the cache budget to sealed caches (prefill builders get the rest), giving each kind its own sub-budget, probation pool and admission state; 0 = one shared budget")
	sealedProbationPct := fs.Float64("sealed-probation-pct", 0,
		"a1 probation share of the sealed sub-budget, percent in (0, 100); 0 inherits -probation-pct (needs -sealed-cache-pct)")
	batchMax := fs.Int("batch-max", 0,
		"max interleaved answer turns per batch worker (0 = 8, 1 disables continuous batching)")
	batchWindow := fs.Duration("batch-window", 0,
		"how long a new batch holds its first request to coalesce arrivals, at most 1s (0 = 2ms, negative = no hold); also sizes the cold-join deadline budget at 8x the window")
	cacheShards := fs.Int("cache-shards", 0,
		"session/prefix cache lock-shard count, rounded up to a power of two; each shard has its own mutex, LRU state and admission policy so concurrent requests on different contexts never contend (0 = NumCPU rounded up to a power of two, 1 = the single-mutex store)")
	cachePersistDir := fs.String("cache-persist-dir", "",
		"directory for the sealed-cache spill tier: admitted sealed caches are written as versioned checksummed artifacts, reloaded on startup for warm restarts and consulted on cache misses; corrupt artifacts degrade to misses (empty disables persistence)")
	streaming := fs.String("streaming", "on",
		"SSE token streaming on the answer endpoints: on (clients opt in per request with ?stream=1 or Accept: text/event-stream) or off (such requests get the buffered JSON body)")
	costBudgetMs := fs.Int("cost-budget-ms", 0,
		"admit answer/session-create work only while the predicted milliseconds in flight stay under this budget, shedding the rest with 503 + Retry-After; priced by the calibrated hardware cost model (0 disables the cost gate, depth shedding still applies)")
	tenantHeader := fs.String("tenant-header", "",
		"HTTP request header naming the tenant for fair scheduling: when set, the batcher queues become per-tenant deficit-round-robin over predicted cost (empty disables tenancy; requests missing the header share one implicit tenant)")
	autoTune := fs.String("auto-tune", "off",
		"session-cache budget auto-tuner: on (nudge TTL, sealed/prefill split and probation share by measured hit-rate-per-byte at window boundaries, within hard clamps) or off (the hand-set knobs behave exactly as before)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	policy, err := cocktail.ParseCachePolicy(*cachePolicy)
	if err != nil {
		return nil, err
	}
	if *ghostEntries < 0 {
		return nil, fmt.Errorf("cocktail-serve: -ghost-entries must be >= 0, have %d", *ghostEntries)
	}
	if *probationPct <= 0 || *probationPct >= 100 {
		return nil, fmt.Errorf("cocktail-serve: -probation-pct must lie in (0, 100), have %v", *probationPct)
	}
	if *adaptWindow < 0 {
		return nil, fmt.Errorf("cocktail-serve: -adapt-window must be >= 0, have %d", *adaptWindow)
	}
	if *sealedCachePct < 0 || *sealedCachePct >= 100 {
		return nil, fmt.Errorf("cocktail-serve: -sealed-cache-pct must lie in [0, 100), have %v", *sealedCachePct)
	}
	if *sealedProbationPct < 0 || *sealedProbationPct >= 100 {
		return nil, fmt.Errorf("cocktail-serve: -sealed-probation-pct must lie in [0, 100), have %v", *sealedProbationPct)
	}
	if *sealedProbationPct > 0 && *sealedCachePct == 0 {
		return nil, fmt.Errorf("cocktail-serve: -sealed-probation-pct requires -sealed-cache-pct")
	}
	// The library accepts negative spellings for both batching knobs
	// (disable / no hold); the CLI rejects them because a stray sign in
	// a deployment manifest is a typo, not a request. Disabling batching
	// is spelled -batch-max 1, and a negligible -batch-window (e.g. 1ns)
	// gets as close to "no hold" as a manifest should need.
	if *batchMax < 0 {
		return nil, fmt.Errorf("cocktail-serve: -batch-max must be >= 0 (1 disables batching), have %d", *batchMax)
	}
	if *batchWindow < 0 {
		return nil, fmt.Errorf("cocktail-serve: -batch-window must be >= 0, have %v", *batchWindow)
	}
	if *batchWindow > time.Second {
		return nil, fmt.Errorf("cocktail-serve: -batch-window must be <= 1s (the cold-join deadline budget is 8x the window), have %v", *batchWindow)
	}
	// The library accepts a negative spelling (pin the single-mutex
	// store); the CLI rejects it because that is spelled -cache-shards 1.
	if *cacheShards < 0 {
		return nil, fmt.Errorf("cocktail-serve: -cache-shards must be >= 0 (0 = NumCPU rounded up to a power of two), have %d", *cacheShards)
	}
	if *cacheShards > 1<<16 {
		return nil, fmt.Errorf("cocktail-serve: -cache-shards must be <= 65536, have %d", *cacheShards)
	}
	var disableStreaming bool
	switch *streaming {
	case "on":
	case "off":
		disableStreaming = true
	default:
		return nil, fmt.Errorf("cocktail-serve: -streaming must be on or off, have %q", *streaming)
	}
	// The library reads any non-positive budget as "cost gate off"; the
	// CLI rejects negative spellings because off is spelled 0 and a stray
	// sign in a manifest is a typo, not a request.
	if *costBudgetMs < 0 {
		return nil, fmt.Errorf("cocktail-serve: -cost-budget-ms must be >= 0 (0 disables the cost gate), have %d", *costBudgetMs)
	}
	if err := validTenantHeader(*tenantHeader); err != nil {
		return nil, err
	}
	var tuneOn bool
	switch *autoTune {
	case "on":
		tuneOn = true
	case "off":
	default:
		return nil, fmt.Errorf("cocktail-serve: -auto-tune must be on or off, have %q", *autoTune)
	}

	return &serveConfig{
		addr: *addr,
		pipeline: cocktail.Config{
			Model: *modelName, Method: *method,
			Alpha: cocktail.Float(*alpha), Beta: cocktail.Float(*beta)},
		opts: httpapi.Options{
			Workers: *workers, QueueDepth: *queue,
			SessionCacheMB: *cacheMB, SessionTTL: *sessionTTL,
			MaxSessions:        *maxSessions,
			CachePolicy:        policy,
			GhostEntries:       *ghostEntries,
			ProbationPct:       *probationPct,
			AdaptWindow:        *adaptWindow,
			SealedCachePct:     *sealedCachePct,
			SealedProbationPct: *sealedProbationPct,
			BatchMax:           *batchMax,
			BatchWindow:        *batchWindow,
			CacheShards:        *cacheShards,
			CachePersistDir:    *cachePersistDir,
			DisableStreaming:   disableStreaming,
			CostBudgetMs:       *costBudgetMs,
			TenantHeader:       *tenantHeader,
			AutoTune:           tuneOn,
		},
	}, nil
}

// validTenantHeader rejects header names the net/http stack could not
// round-trip: the scheduler keys tenants by the header's value, so a
// name with whitespace or separators would silently never match and
// every request would collapse into the implicit tenant.
func validTenantHeader(name string) error {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("cocktail-serve: -tenant-header must be a header token (letters, digits, - or _), have %q", name)
		}
	}
	return nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h / -help: usage already printed, clean exit
	}
	if err != nil {
		log.Fatal(err)
	}
	p, err := cocktail.New(cfg.pipeline)
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(p, cfg.opts)
	log.Printf("cocktail-serve: %s / %s listening on %s", cfg.pipeline.Model, cfg.pipeline.Method, cfg.addr)
	log.Fatal(http.ListenAndServe(cfg.addr, srv))
}
